"""Protocol-conformance suite for batched agreement (docs/BATCHING.md).

Pins the compatibility contract of the batching layer:

* at batch size 1 the wire flow is *byte-for-byte* the pre-batching
  protocol — same messages, same order, same simulated timestamps; the
  only trace difference is the purely diagnostic ``proto.batch`` record,
* batched and unbatched deployments are state-machine equivalent (same
  client outcomes, same converged application state),
* pipelined agreement commits strictly in order, including across a
  leader crash and view change.
"""

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.hybster.config import BatchConfig, ClusterConfig


def wire_trace(cluster) -> list[str]:
    """Every wire send as a rendered record (timestamp included)."""
    return [str(r) for r in cluster.tracer.filter(category="proto.send")]


def full_trace_sans_diagnostics(cluster) -> list[str]:
    """The whole protocol trace minus the batch-flush diagnostics, which
    describe leader-local policy decisions and never touch the wire."""
    return [
        str(r) for r in cluster.tracer.records if r.category != "proto.batch"
    ]


def run_sequential_writes(batching, rounds: int = 8):
    cluster = build_troxy(
        seed=71, app_factory=KvStore, trace=True, batching=batching
    )
    client = cluster.new_client(contact_index=0)
    contents = []

    def driver():
        for i in range(rounds):
            outcome = yield from client.invoke(put(f"k{i}", b"v"))
            contents.append(outcome.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    assert len(contents) == rounds, "workload did not complete"
    return cluster, contents


def test_size_one_batches_are_wire_equivalent():
    """The fig5 conformance anchor: a size-1 configuration routes through
    the batch loop yet reproduces the pre-batching message flow byte for
    byte — message types, destinations, sequence labels *and* simulated
    timestamps."""
    legacy, legacy_results = run_sequential_writes("off")
    batched, batched_results = run_sequential_writes(BatchConfig.sized(1))
    assert batched_results == legacy_results
    assert wire_trace(batched) == wire_trace(legacy)
    assert full_trace_sans_diagnostics(batched) == full_trace_sans_diagnostics(legacy)
    # The batch loop really ran (this is not the legacy code path) ...
    leader = batched.replicas[0]
    assert leader.stats.batches_sent >= len(batched_results)
    # ... but no Batch message ever hit the wire: single-request batches
    # are emitted as bare Requests, preserving the wire format.
    assert not [line for line in wire_trace(batched) if "Batch" in line]


def run_concurrent_mix(batching, clients: int = 4, writes: int = 4):
    cluster = build_troxy(seed=72, app_factory=KvStore, batching=batching)
    results = {}

    def driver(index, client):
        outcomes = []
        for n in range(writes):
            outcome = yield from client.invoke(
                put(f"key-{index}", f"v{n}".encode())
            )
            outcomes.append(outcome.result.content)
        outcome = yield from client.invoke(get(f"key-{index}"))
        outcomes.append(outcome.result.content)
        results[index] = outcomes

    for index in range(clients):
        cluster.env.process(driver(index, cluster.new_client(contact_index=0)))
    cluster.env.run(until=60.0)
    assert len(results) == clients, "workload did not complete"
    return cluster, results


def test_size_one_batches_are_state_machine_equivalent():
    legacy, legacy_results = run_concurrent_mix("off")
    batched, batched_results = run_concurrent_mix(BatchConfig.sized(1))
    assert batched_results == legacy_results
    legacy_snap = {r.app.snapshot() for r in legacy.replicas}
    batched_snap = {r.app.snapshot() for r in batched.replicas}
    assert len(legacy_snap) == len(batched_snap) == 1
    assert batched_snap == legacy_snap
    assert {r.stats.executions for r in batched.replicas} == {
        r.stats.executions for r in legacy.replicas
    }


def test_multi_request_batches_preserve_outcomes():
    """Real batching (size 4) is observationally equivalent for clients."""
    legacy, legacy_results = run_concurrent_mix("off")
    batched, batched_results = run_concurrent_mix(BatchConfig.sized(4))
    assert batched_results == legacy_results
    assert {r.app.snapshot() for r in batched.replicas} == {
        r.app.snapshot() for r in legacy.replicas
    }
    leader = batched.replicas[0]
    assert leader.stats.batched_requests > leader.stats.batches_sent  # real batches formed


def executed_seqs(cluster, replica_id: str) -> list[int]:
    return [
        int(r.detail.split()[0].split("=")[1])
        for r in cluster.tracer.filter(
            category="proto.execute", node=replica_id
        )
    ]


def test_pipelined_commits_are_in_order():
    """With several batches in flight, every replica still executes in
    strictly non-decreasing, gap-free sequence order."""
    cluster = build_troxy(
        seed=73, app_factory=KvStore, trace=True,
        batching=BatchConfig(max_batch=4, pipeline_depth=4),
    )
    done = []

    def driver(index, client):
        for n in range(6):
            outcome = yield from client.invoke(
                put(f"key-{index}", f"v{n}".encode())
            )
            assert outcome.result.content == b"stored"
        done.append(index)

    for index in range(6):
        cluster.env.process(driver(index, cluster.new_client(contact_index=0)))
    cluster.env.run(until=60.0)
    assert len(done) == 6

    leader = cluster.replicas[0]
    assert leader.stats.max_pipeline_depth >= 2, "pipeline never overlapped"
    for replica in cluster.replicas:
        seqs = executed_seqs(cluster, replica.replica_id)
        assert seqs, "replica executed nothing"
        assert seqs == sorted(seqs), "out-of-order execution"
        assert set(seqs) == set(range(1, max(seqs) + 1)), "gap in commit order"
    assert len({r.app.snapshot() for r in cluster.replicas}) == 1


def test_pipelined_commits_in_order_across_view_change():
    """A leader crash mid-pipeline must not lose, duplicate, or reorder
    batched requests: the new leader re-orders what died with the old
    pipeline and survivors keep executing in sequence order."""
    config = ClusterConfig(f=1, request_timeout=1.5, progress_timeout=0.5)
    cluster = build_troxy(
        seed=74, app_factory=KvStore, config=config, trace=True,
        batching=BatchConfig(max_batch=4, pipeline_depth=4),
    )
    completed = {}

    def driver(index, client):
        for n in range(3):
            outcome = yield from client.invoke(
                put(f"key-{index}", f"v{n}".encode())
            )
            assert outcome.result.content == b"stored"
        outcome = yield from client.invoke(get(f"key-{index}"))
        completed[index] = outcome.result.content

    for index in range(6):
        client = cluster.new_client(
            contact_index=1 + (index % 2), request_timeout=1.5
        )
        cluster.env.process(driver(index, client))

    def killer():
        yield cluster.env.timeout(0.0006)  # mid-burst, pipeline loaded
        cluster.hosts[0].stop()  # view-0 leader and its Troxy

    cluster.env.process(killer())
    cluster.env.run(until=180.0)

    assert completed == {i: b"v2" for i in range(6)}
    survivors = cluster.replicas[1:]
    assert all(r.view >= 1 for r in survivors)
    assert len({r.app.snapshot() for r in survivors}) == 1
    for replica in survivors:
        seqs = executed_seqs(cluster, replica.replica_id)
        assert seqs == sorted(seqs), "out-of-order execution across views"
        # Exactly-once: no sequence slot executed the same request twice.
        labels = [
            r.detail for r in cluster.tracer.filter(
                category="proto.execute", node=replica.replica_id
            )
        ]
        assert len(labels) == len(set(labels))
