"""Unit tests for the replicated applications."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.apps.echo import EchoService
from repro.apps.httpd import (
    HttpPageService,
    get_operation,
    parse_response,
    post_operation,
    seed_pages,
)
from repro.apps.kvstore import KvStore, delete, get, put


# -- Payload / Operation -------------------------------------------------------


def test_payload_size_uses_padding():
    assert Payload(b"abc", padded_size=100).size == 100
    assert Payload(b"abc").size == 3


def test_payload_padding_must_cover_content():
    with pytest.raises(ValueError):
        Payload(b"abcdef", padded_size=2)


def test_payload_digest_covers_size():
    assert Payload(b"x", padded_size=10).digest() != Payload(b"x", padded_size=20).digest()


def test_operation_digest_distinguishes_kind():
    a = Operation(OpKind.READ, "get", "k")
    b = Operation(OpKind.WRITE, "get", "k")
    assert a.digest() != b.digest()
    assert a.is_read and not b.is_read


# -- EchoService ------------------------------------------------------------------


def test_echo_write_bumps_version():
    app = EchoService(reply_size=64)
    write = Operation(OpKind.WRITE, "set", "k")
    read = Operation(OpKind.READ, "get", "k")
    v0 = app.execute(read)
    app.execute(write)
    v1 = app.execute(read)
    assert v0.content != v1.content
    assert v1.size == 64


def test_echo_write_reply_is_small():
    app = EchoService(reply_size=8192)
    reply = app.execute(Operation(OpKind.WRITE, "set", "k"))
    assert reply.size == 10  # the paper's fixed 10 B write ack


def test_echo_snapshot_roundtrip():
    app = EchoService()
    for key in ("a", "b", "a"):
        app.execute(Operation(OpKind.WRITE, "set", key))
    clone = EchoService()
    clone.restore(app.snapshot())
    assert clone.snapshot() == app.snapshot()


def test_echo_rejects_bad_reply_size():
    with pytest.raises(ValueError):
        EchoService(reply_size=0)


# -- KvStore ------------------------------------------------------------------------


def test_kv_put_get_delete():
    app = KvStore()
    assert app.execute(put("k", b"v")).content == b"stored"
    assert app.execute(get("k")).content == b"v"
    assert app.execute(delete("k")).content == b"deleted"
    assert app.execute(get("k")).content == b"\x00missing"
    assert app.execute(delete("k")).content == b"absent"


def test_kv_snapshot_roundtrip():
    app = KvStore()
    app.execute(put("a", b"1"))
    app.execute(put("b", b"binary\x00\x01\x02"))
    clone = KvStore()
    clone.restore(app.snapshot())
    assert clone.execute(get("b")).content == b"binary\x00\x01\x02"


def test_kv_reads_do_not_mutate():
    app = KvStore()
    app.execute(put("a", b"1"))
    before = app.snapshot()
    app.execute_read(get("a"))
    assert app.snapshot() == before


def test_kv_execute_read_rejects_writes():
    with pytest.raises(ValueError):
        KvStore().execute_read(put("a", b"1"))


def test_kv_unknown_operation():
    with pytest.raises(ValueError):
        KvStore().execute(Operation(OpKind.WRITE, "increment", "k"))


# -- HttpPageService -----------------------------------------------------------------


def test_http_get_existing_page():
    app = HttpPageService()
    result = app.execute(get_operation("/page/0"))
    response = parse_response(result.content)
    assert response.status == 200
    assert len(response.body) == 4096  # first seeded page size


def test_http_get_missing_page_404():
    app = HttpPageService()
    response = parse_response(app.execute(get_operation("/nope")).content)
    assert response.status == 404


def test_http_post_modifies_page_and_returns_it():
    app = HttpPageService()
    posted = b"fresh-content-" * 10
    response = parse_response(app.execute(post_operation("/page/0", posted)).content)
    assert response.status == 200
    assert response.body.startswith(b"fresh-content-")
    assert len(response.body) == 4096  # page size stays stable
    follow_up = parse_response(app.execute(get_operation("/page/0")).content)
    assert follow_up.body == response.body


def test_http_post_to_new_path_creates_page():
    app = HttpPageService(pages={})
    response = parse_response(app.execute(post_operation("/new", b"hello")).content)
    assert response.body == b"hello"


def test_http_unknown_method_405():
    from repro.apps.httpd import HttpRequest, http_operation

    app = HttpPageService()
    response = parse_response(
        app.execute(http_operation(HttpRequest("PUT", "/page/0"))).content
    )
    assert response.status == 405


def test_http_deterministic_across_replicas():
    a, b = HttpPageService(), HttpPageService()
    ops = [post_operation("/page/1", b"x" * 50), get_operation("/page/1")]
    for op in ops:
        ra, rb = a.execute(op), b.execute(op)
        assert ra.content == rb.content
    assert a.snapshot() == b.snapshot()


def test_http_snapshot_roundtrip():
    app = HttpPageService()
    app.execute(post_operation("/page/3", b"mutation"))
    clone = HttpPageService(pages={})
    clone.restore(app.snapshot())
    assert clone.snapshot() == app.snapshot()


def test_seed_pages_sizes():
    pages = seed_pages(count=16)
    sizes = {len(content) for content in pages.values()}
    assert min(sizes) == 4096
    assert max(sizes) == 18432


def test_http_operation_read_write_kinds():
    assert get_operation("/p").is_read
    assert not post_operation("/p", b"x").is_read
    assert get_operation("/p").key == "/p"
