"""Unit tests for the HTTP codec."""

import pytest

from repro.apps.httpd import (
    HttpError,
    HttpRequest,
    HttpResponse,
    frame_length,
    parse_request,
    parse_response,
)


def test_request_roundtrip():
    request = HttpRequest("GET", "/page/1", (("Host", "example.org"),))
    parsed = parse_request(request.encode())
    assert parsed.method == "GET"
    assert parsed.path == "/page/1"
    assert parsed.header("host") == "example.org"
    assert parsed.body == b""


def test_request_with_body_roundtrip():
    request = HttpRequest("POST", "/page/2", (), b"payload-data")
    encoded = request.encode()
    assert b"Content-Length: 12" in encoded
    parsed = parse_request(encoded)
    assert parsed.method == "POST"
    assert parsed.body == b"payload-data"


def test_response_roundtrip():
    response = HttpResponse(200, body=b"<html>hi</html>")
    parsed = parse_response(response.encode())
    assert parsed.status == 200
    assert parsed.reason == "OK"
    assert parsed.body == b"<html>hi</html>"


def test_response_404_reason_default():
    parsed = parse_response(HttpResponse(404, body=b"x").encode())
    assert parsed.reason == "Not Found"


def test_frame_length_finds_boundary():
    request = HttpRequest("POST", "/x", (), b"12345").encode()
    assert frame_length(request) == len(request)
    assert frame_length(request + b"EXTRA") == len(request)


def test_frame_length_incomplete_headers():
    assert frame_length(b"GET / HTTP/1.1\r\nHost: x") is None


def test_frame_length_incomplete_body():
    request = HttpRequest("POST", "/x", (), b"0123456789").encode()
    assert frame_length(request[:-3]) is None


def test_two_pipelined_messages():
    first = HttpRequest("POST", "/a", (), b"one").encode()
    second = HttpRequest("GET", "/b").encode()
    data = first + second
    cut = frame_length(data)
    assert cut == len(first)
    assert parse_request(data[:cut]).path == "/a"
    assert parse_request(data[cut:]).path == "/b"


def test_malformed_request_line():
    with pytest.raises(HttpError):
        parse_request(b"NONSENSE\r\n\r\n")


def test_malformed_header_rejected():
    with pytest.raises(HttpError):
        parse_request(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")


def test_bad_content_length_rejected():
    with pytest.raises(HttpError):
        frame_length(b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n")


def test_incomplete_raises():
    with pytest.raises(HttpError):
        parse_request(b"GET / HT")


def test_bad_status_code():
    with pytest.raises(HttpError):
        parse_response(b"HTTP/1.1 abc OK\r\n\r\n")


def test_header_lookup_case_insensitive():
    response = HttpResponse(200, headers=(("X-Thing", "v"),))
    assert response.header("x-thing") == "v"
    assert response.header("missing") is None
