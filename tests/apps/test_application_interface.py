"""Contract tests for the Application base interface."""

import pytest

from repro.apps.base import Application, Operation, OpKind, Payload


class MinimalApp(Application):
    def __init__(self):
        self.state = {}

    def execute(self, op):
        if op.kind is OpKind.WRITE:
            self.state[op.key] = op.body.content
            return Payload(b"ok")
        return Payload(self.state.get(op.key, b""))

    def snapshot(self):
        return repr(sorted(self.state.items())).encode()

    def restore(self, snapshot):
        self.state = dict(eval(snapshot.decode()))


def test_execute_read_defaults_to_execute():
    app = MinimalApp()
    app.execute(Operation(OpKind.WRITE, "put", "k", Payload(b"v")))
    assert app.execute_read(Operation(OpKind.READ, "get", "k")).content == b"v"


def test_execute_read_rejects_writes():
    with pytest.raises(ValueError):
        MinimalApp().execute_read(Operation(OpKind.WRITE, "put", "k"))


def test_keys_accessed_defaults_to_op_key():
    assert MinimalApp().keys_accessed(Operation(OpKind.READ, "get", "xyz")) == ("xyz",)


def test_execution_cost_scales_with_body():
    app = MinimalApp()
    small = app.execution_cost(Operation(OpKind.WRITE, "put", "k", Payload(b"x")))
    big = app.execution_cost(
        Operation(OpKind.WRITE, "put", "k", Payload(b"x", padded_size=1 << 20))
    )
    assert big > small > 0


def test_base_class_methods_are_abstract():
    base = Application()
    with pytest.raises(NotImplementedError):
        base.execute(Operation(OpKind.READ, "get", "k"))
    with pytest.raises(NotImplementedError):
        base.snapshot()
    with pytest.raises(NotImplementedError):
        base.restore(b"")


def test_operation_size_accounts_for_parts():
    op = Operation(OpKind.WRITE, "put", "key", Payload(b"12345"))
    assert op.size >= len("put") + len("key") + 5
