"""Fault injection against the Troxy deployment (DESIGN.md section 5).

Each test stages one of the paper's threat-model behaviours through the
:mod:`repro.faults` plane and checks the system reacts as Sections
III-D, IV-B and VI-B prescribe.
"""

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.faults import (
    EnclaveReboot,
    FaultPlane,
    HostTamper,
    MessageLoss,
    ReplicaCrash,
)
from repro.troxy.messages import CacheEntryReply


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_byzantine_replica_result_outvoted():
    """A replica computing garbage cannot defeat the server-side voter."""
    cluster = build_troxy(seed=20, app_factory=KvStore)

    class LyingApp(KvStore):
        def execute(self, op):
            super().execute(op)
            return Payload(b"\xffgarbage")

    cluster.replicas[2].app = LyingApp()
    client = cluster.new_client(contact_index=0)
    results = run_ops(cluster, client, [put("x", b"truth"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"truth"]


def test_untrusted_host_tampering_with_reply_detected_and_failed_over():
    """Bypassing Troxy (Section VI-B): the untrusted part of the contact
    replica mangles the sealed client reply. The client detects the
    corrupted channel, times out, and fails over to another Troxy."""
    cluster = build_troxy(seed=21, app_factory=KvStore)
    plane = FaultPlane(cluster)
    tamper = HostTamper("replica-0", forged_result=b"\xffforged", count=0)
    plane.inject(tamper)
    client = cluster.new_client(contact_index=0, request_timeout=1.0)
    results = run_ops(cluster, client, [put("x", b"real"), get("x")], until=60.0)
    assert plane.rule_hits(tamper) >= 1  # the attack actually ran
    assert client.stats.invalid_replies >= 1  # corrupted channel detected
    assert client.stats.failovers >= 1
    assert [r.result.content for r in results] == [b"stored", b"real"]


def test_troxy_crash_triggers_client_failover():
    """Section III-D: a crashed Troxy is handled like any crashed server;
    the client reconnects elsewhere and retransmits."""
    cluster = build_troxy(seed=22, app_factory=KvStore)
    plane = FaultPlane(cluster)
    client = cluster.new_client(contact_index=1, request_timeout=1.0)
    results = run_ops(cluster, client, [put("x", b"v1")])
    assert results[0].result.content == b"stored"
    plane.inject(ReplicaCrash("replica-1"))  # crash the contact (a follower)
    results = run_ops(cluster, client, [get("x")], until=60.0)
    assert results[0].result.content == b"v1"
    assert client.stats.failovers >= 1


def test_stale_cache_reply_replay_rejected():
    """A malicious replica replays an earlier CacheEntryReply for a new
    query. The nonce binding makes it useless; the read still completes
    correctly (fallback path at worst)."""
    # Pins the voted probe path; leases off so the CI lease matrix
    # cannot serve the second read locally (docs/READS.md).
    cluster = build_troxy(seed=23, app_factory=KvStore, leases="off")
    plane = FaultPlane(cluster)
    capture = plane.tap(payload_types=("CacheEntryReply",))
    client = cluster.new_client(contact_index=0)
    results = run_ops(
        cluster, client, [put("k", b"old"), get("k"), get("k")]
    )
    assert results[-1].result.content == b"old"
    assert capture.captured, "expected at least one cache-entry reply on the wire"
    stale = capture.captured[0]

    # Write a new value, then replay the stale answer during the next read.
    results = run_ops(cluster, client, [put("k", b"new")])
    assert results[0].result.content == b"stored"

    replaying_core = cluster.cores[0]

    def replay_driver():
        # Deliver the stale (old-nonce) reply straight to the voting core.
        action = yield from cluster.hosts[0].enclave.ecall(
            "handle_cache_entry_reply", stale, bytes_in=stale.wire_size
        )
        assert action.kind == "wait"  # no outstanding query with that nonce

    cluster.env.process(replay_driver())
    cluster.env.run(until=cluster.env.now + 5.0)

    results = run_ops(cluster, client, [get("k")])
    assert results[0].result.content == b"new"
    assert replaying_core.stats.invalid_messages == 0  # replay is inert, not a crash


def test_forged_cache_reply_rejected():
    """A replica without the group secret cannot forge cache answers."""
    cluster = build_troxy(seed=24, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v"), get("k")])
    forged = CacheEntryReply(
        request_digest=b"\x00" * 32,
        reply_digest=b"\x11" * 32,
        responder="replica-1",
        nonce=999,
        tag=b"\x00" * 32,
    )

    def driver():
        action = yield from cluster.hosts[0].enclave.ecall(
            "handle_cache_entry_reply", forged, bytes_in=forged.wire_size
        )
        assert action.kind in ("wait", "drop")

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 5.0)


def test_enclave_reboot_loses_cache_but_not_safety():
    """Rollback attack (Section IV-B): rebooting the enclave empties the
    cache (reads fall back to ordering) while the sealed trusted counters
    never regress, so ordering stays safe."""
    cluster = build_troxy(seed=25, app_factory=KvStore)
    plane = FaultPlane(cluster)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v1"), get("k")])
    core = cluster.cores[0]
    assert len(core.cache) > 0
    counter_before = cluster.replicas[0].counters.current("order/0")

    plane.inject(EnclaveReboot("replica-0"))
    assert len(core.cache) == 0  # volatile state gone
    assert cluster.replicas[0].counters.current("order/0") == counter_before
    # The plane snapshotted the sealed counters right before the reboot.
    assert plane.counter_baselines["replica-0"][0]["order/0"] == counter_before

    # The client re-establishes its session (legacy reconnect behaviour)
    # and keeps working; reads are ordered again until the cache rewarms.
    client.connect_instant()
    results = run_ops(cluster, client, [get("k"), get("k")])
    assert [r.result.content for r in results] == [b"v1", b"v1"]


def test_leader_crash_in_troxy_mode_recovers_via_view_change():
    cluster = build_troxy(seed=26, app_factory=KvStore)
    plane = FaultPlane(cluster)
    client = cluster.new_client(contact_index=1, request_timeout=2.0)
    results = run_ops(cluster, client, [put("x", b"before")])
    assert results[0].result.content == b"stored"
    plane.inject(ReplicaCrash("replica-0"))  # replica-0 is the view-0 leader
    results = run_ops(cluster, client, [put("y", b"after"), get("y")], until=90.0)
    assert [r.result.content for r in results] == [b"stored", b"after"]
    assert all(r.view >= 1 for r in cluster.replicas[1:])


def test_unresponsive_remote_troxy_times_out_to_ordering():
    """Performance attack: a remote Troxy that never answers cache
    queries only slows the read down to the ordered path."""
    cluster = build_troxy(seed=27, app_factory=KvStore, query_timeout=0.2)
    plane = FaultPlane(cluster)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v"), get("k")])
    # Black-hole all cache queries leaving replica-0.
    blackhole = MessageLoss(
        src="replica-0", payload_types=("CacheQuery",), probability=1.0
    )
    plane.inject(blackhole)
    results = run_ops(cluster, client, [get("k")])
    assert results[0].result.content == b"v"
    assert cluster.cores[0].stats.fast_read_timeouts >= 1
    assert plane.rule_hits(blackhole) >= 1
