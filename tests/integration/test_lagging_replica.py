"""A replica that executes slower than the cluster checkpoints must keep
catching up from its own log (regression: the stable checkpoint used to
garbage-collect entries the laggard still needed, wedging it forever)."""

import pytest

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, put
from repro.bench.clusters import build_baseline
from repro.hybster.config import ClusterConfig


class SlowKv(KvStore):
    """Same semantics, 30x the execution cost."""

    def execution_cost(self, op):
        return 30 * super().execution_cost(op)


def test_slow_replica_is_not_wedged_by_checkpoints():
    config = ClusterConfig(f=1, checkpoint_interval=8, progress_timeout=5.0)
    cluster = build_baseline(seed=81, app_factory=KvStore, config=config)
    slow = cluster.replicas[2]
    slow.app = SlowKv()
    clients = [cluster.new_client(read_optimization=False) for _ in range(4)]
    done = []

    def driver(index, client):
        for i in range(30):
            yield from client.invoke(put(f"k{index}-{i}", b"v"))
        done.append(index)

    for index, client in enumerate(clients):
        cluster.env.process(driver(index, client))
    cluster.env.run(until=120.0)
    assert sorted(done) == [0, 1, 2, 3]

    total = 4 * 30
    fast = cluster.replicas[0]
    assert fast.stats.executions == total
    # Let the laggard drain with no new load.
    cluster.env.run(until=cluster.env.now + 60.0)
    assert slow.stats.executions == total
    assert slow.app.snapshot() == fast.app.snapshot()
    # Its log is eventually truncated up to what it executed.
    cut = min(slow.stable_seq, slow.next_exec - 1)
    assert all(seq > cut for seq in slow.log)
    # And no replica was pushed into a view change by mere slowness.
    assert all(replica.view == 0 for replica in cluster.replicas)
