"""End-to-end tests of the baseline (BL) Hybster deployment."""

import pytest

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline


def run_ops(cluster, client, ops, until=30.0):
    """Drive a sequence of operations through one client; returns results."""
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_single_write_and_read():
    cluster = build_baseline(seed=1, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("x", b"hello"), get("x")])
    assert len(results) == 2
    assert results[0].result.content == b"stored"
    assert results[1].result.content == b"hello"


def test_read_uses_unordered_optimization():
    cluster = build_baseline(seed=2, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("k", b"v"), get("k")])
    assert results[0].ordered
    assert not results[1].ordered  # fast path, no ordering
    assert results[1].result.content == b"v"


def test_read_optimization_disabled_orders_reads():
    cluster = build_baseline(seed=3, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)
    results = run_ops(cluster, client, [put("k", b"v"), get("k")])
    assert results[1].ordered
    assert results[1].result.content == b"v"


def test_all_replicas_execute_in_same_order():
    cluster = build_baseline(seed=4, app_factory=KvStore)
    client = cluster.new_client()
    ops = [put(f"k{i % 3}", f"v{i}".encode()) for i in range(12)]
    run_ops(cluster, client, ops)
    snapshots = {replica.app.snapshot() for replica in cluster.replicas}
    assert len(snapshots) == 1
    assert all(replica.stats.executions == 12 for replica in cluster.replicas)


def test_multiple_concurrent_clients():
    cluster = build_baseline(seed=5, app_factory=KvStore)
    clients = [cluster.new_client() for _ in range(6)]
    all_results = []

    def driver(client, i):
        outcome = yield from client.invoke(put(f"key-{i}", f"value-{i}".encode()))
        all_results.append(outcome)
        outcome = yield from client.invoke(get(f"key-{i}"))
        all_results.append((i, outcome.result.content))

    for i, client in enumerate(clients):
        cluster.env.process(driver(client, i))
    cluster.env.run(until=30.0)
    reads = [entry for entry in all_results if isinstance(entry, tuple)]
    assert sorted(reads) == [(i, f"value-{i}".encode()) for i in range(6)]


def test_replies_come_from_quorum():
    cluster = build_baseline(seed=6, app_factory=KvStore)
    client = cluster.new_client()
    run_ops(cluster, client, [put("a", b"1")])
    assert client.stats.replies_received >= cluster.config.reply_quorum


def test_byzantine_replica_outvoted_on_ordered_requests():
    """A replica that lies about results cannot defeat the vote (f=1)."""
    cluster = build_baseline(seed=7, app_factory=KvStore)

    class LyingApp(KvStore):
        def execute(self, op):
            super().execute(op)
            return Payload(b"\xffLIES")

    cluster.replicas[2].app = LyingApp()
    client = cluster.new_client(read_optimization=False)
    results = run_ops(cluster, client, [put("x", b"truth"), get("x")])
    assert results[1].result.content == b"truth"


def test_byzantine_replica_forces_read_conflict_fallback():
    """A lying replica plus an unresponsive one spoil the f+1 read quorum;
    the client falls back to ordering (Section IV-B). Note two *colluding*
    liars would exceed the f=1 fault threshold and are out of scope."""
    cluster = build_baseline(seed=8, app_factory=KvStore)

    class LyingOnReads(KvStore):
        def execute_read(self, op):
            return Payload(b"\xffstale")

    cluster.replicas[1].app = LyingOnReads()
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("x", b"real")])
    assert results[0].result.content == b"stored"
    cluster.replicas[2].stop()  # only the honest leader + the liar answer reads
    results = run_ops(cluster, client, [get("x")])
    # The ordered fallback executes on truthful state machines.
    assert results[0].result.content == b"real"
    assert results[0].read_conflict


def test_crashed_follower_does_not_block_progress():
    cluster = build_baseline(seed=9, app_factory=KvStore)
    follower = cluster.replicas[1]
    assert not follower.is_leader
    follower.stop()
    client = cluster.new_client(read_optimization=False)
    results = run_ops(cluster, client, [put("x", b"v"), get("x")])
    assert results[1].result.content == b"v"


def test_leader_crash_triggers_view_change_and_recovers():
    cluster = build_baseline(seed=10, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)
    results = run_ops(cluster, client, [put("x", b"before")], until=10.0)
    assert results[0].result.content == b"stored"

    cluster.replicas[0].stop()  # kill the view-0 leader
    results2 = run_ops(cluster, client, [put("y", b"after"), get("y")], until=60.0)
    assert [r.result.content for r in results2] == [b"stored", b"after"]
    alive = [r for r in cluster.replicas[1:]]
    assert all(r.view >= 1 for r in alive)


def test_duplicate_retransmission_executes_once():
    cluster = build_baseline(seed=11, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)

    def driver():
        request_before = client._request_id
        outcome = yield from client.invoke(put("ctr", b"x"))
        assert outcome.result.content == b"stored"
        # Manually retransmit the same request to everyone.
        from repro.hybster.messages import Request
        from repro.apps.kvstore import put as put_op

        op = put_op("ctr", b"x")
        dup = Request(client.client_id, request_before + 1, op, client.node.name)
        yield from client._distribute(dup)
        yield cluster.env.timeout(2.0)

    cluster.env.process(driver())
    cluster.env.run(until=20.0)
    assert cluster.replicas[0].stats.executions == 1


def test_checkpoints_truncate_log():
    from repro.hybster.config import ClusterConfig

    config = ClusterConfig(f=1, checkpoint_interval=5)
    cluster = build_baseline(seed=12, app_factory=KvStore, config=config)
    client = cluster.new_client(read_optimization=False)
    ops = [put(f"k{i}", b"v") for i in range(12)]
    run_ops(cluster, client, ops)
    for replica in cluster.replicas:
        assert replica.stable_seq >= 5
        assert all(seq > replica.stable_seq for seq in replica.log)


def test_stale_view_replica_catches_up_in_view():
    cluster = build_baseline(seed=13, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)
    run_ops(cluster, client, [put("a", b"1"), put("b", b"2"), get("a")])
    views = {replica.view for replica in cluster.replicas}
    assert views == {0}  # no spurious view changes under normal operation
