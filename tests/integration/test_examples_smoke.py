"""The shipped examples must keep running (they are documentation)."""

import runpy
import sys

import pytest


@pytest.mark.parametrize("example", ["quickstart", "migration", "read_heavy_cache"])
def test_example_runs_to_completion(example, capsys):
    runpy.run_path(f"examples/{example}.py", run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{example} produced no output"


def test_quickstart_narrative(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    output = capsys.readouterr().out
    assert "fast read" in output
    assert "garbage" not in output.split("->")[0]  # the client never saw it
    assert "Byzantine replica" in output


def test_migration_shows_all_three_steps(capsys):
    runpy.run_path("examples/migration.py", run_name="__main__")
    output = capsys.readouterr().out
    assert output.count("GET  /page/3: 200") == 3
    assert "client: zero changes" in output
