"""View change while traffic is in flight — no request may be lost or
duplicated, and the surviving replicas must converge."""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline, build_troxy
from repro.hybster.config import ClusterConfig


def test_baseline_leader_crash_under_load():
    config = ClusterConfig(f=1, request_timeout=1.0, progress_timeout=0.5)
    cluster = build_baseline(seed=61, app_factory=KvStore, config=config)
    clients = [cluster.new_client(read_optimization=False) for _ in range(8)]
    completed = {}

    def driver(index, client):
        for i in range(4):
            outcome = yield from client.invoke(put(f"key-{index}", f"v{i}".encode()))
            assert outcome.result.content == b"stored"
        outcome = yield from client.invoke(get(f"key-{index}"))
        completed[index] = outcome.result.content

    for index, client in enumerate(clients):
        cluster.env.process(driver(index, client))

    def killer():
        yield cluster.env.timeout(0.0006)  # mid-burst
        cluster.replicas[0].stop()

    cluster.env.process(killer())
    cluster.env.run(until=120.0)

    assert completed == {i: b"v3" for i in range(8)}
    survivors = cluster.replicas[1:]
    assert all(r.view >= 1 for r in survivors)
    snapshots = {r.app.snapshot() for r in survivors}
    assert len(snapshots) == 1
    # Exactly-once execution: both survivors executed the same (complete)
    # set of ordered writes; reads were unordered.
    executions = {r.stats.executions for r in survivors}
    assert len(executions) == 1
    assert executions.pop() >= 8 * 4


def test_troxy_leader_crash_under_load():
    config = ClusterConfig(f=1, request_timeout=1.5, progress_timeout=0.5)
    cluster = build_troxy(seed=62, app_factory=KvStore, config=config)
    clients = [cluster.new_client(contact_index=1 + (i % 2), request_timeout=1.5)
               for i in range(6)]
    completed = {}

    def driver(index, client):
        for i in range(3):
            outcome = yield from client.invoke(put(f"key-{index}", f"v{i}".encode()))
            assert outcome.result.content == b"stored"
        outcome = yield from client.invoke(get(f"key-{index}"))
        completed[index] = outcome.result.content

    for index, client in enumerate(clients):
        cluster.env.process(driver(index, client))

    def killer():
        yield cluster.env.timeout(0.0006)
        cluster.hosts[0].stop()  # the view-0 leader and its Troxy

    cluster.env.process(killer())
    cluster.env.run(until=180.0)

    assert completed == {i: b"v2" for i in range(6)}
    survivors = cluster.replicas[1:]
    assert all(r.view >= 1 for r in survivors)
    snapshots = {r.app.snapshot() for r in survivors}
    assert len(snapshots) == 1


def test_checkpointing_continues_across_view_change():
    config = ClusterConfig(
        f=1, checkpoint_interval=4, request_timeout=1.0, progress_timeout=0.5
    )
    cluster = build_baseline(seed=63, app_factory=KvStore, config=config)
    client = cluster.new_client(read_optimization=False)
    done = []

    def driver():
        for i in range(6):
            yield from client.invoke(put(f"a{i}", b"x"))
        cluster.replicas[0].stop()
        for i in range(10):
            yield from client.invoke(put(f"b{i}", b"y"))
        done.append(True)

    cluster.env.process(driver())
    cluster.env.run(until=120.0)
    assert done
    for replica in cluster.replicas[1:]:
        assert replica.stable_seq >= 8  # checkpoints kept advancing
        # Truncation bound: everything executed below the stable
        # checkpoint is gone; a replica only retains what it still needs.
        cut = min(replica.stable_seq, replica.next_exec - 1)
        assert all(seq > cut for seq in replica.log)
