"""End-to-end tests of the Troxy-backed deployment."""

import pytest

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_write_then_read_through_leader_troxy():
    cluster = build_troxy(seed=1, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)  # replica-0 is the leader
    results = run_ops(cluster, client, [put("x", b"hello"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"hello"]


def test_write_then_read_through_follower_troxy():
    """Fig. 5c: the contact replica forwards to the leader."""
    cluster = build_troxy(seed=2, app_factory=KvStore)
    client = cluster.new_client(contact_index=1)
    results = run_ops(cluster, client, [put("x", b"via-follower"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"via-follower"]


def test_client_receives_exactly_one_reply_per_request():
    """Transparency: no voting at the client, a single reply arrives."""
    cluster = build_troxy(seed=3, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v")])
    # The client machine's inbox dispatcher saw exactly one envelope.
    assert client.stats.invocations == 1
    assert client.stats.invalid_replies == 0
    assert client.stats.timeouts == 0


def test_all_replicas_converge():
    cluster = build_troxy(seed=4, app_factory=KvStore)
    clients = [cluster.new_client() for _ in range(4)]
    for i, client in enumerate(clients):
        cluster.env.process(client.invoke(put(f"key-{i}", f"v{i}".encode())))
    cluster.env.run(until=30.0)
    snapshots = {replica.app.snapshot() for replica in cluster.replicas}
    assert len(snapshots) == 1
    assert cluster.replicas[0].stats.executions == 4


def test_second_read_is_served_from_cache():
    # Pins the voted probe path; leases off so the CI lease matrix
    # cannot serve the second read locally (docs/READS.md).
    cluster = build_troxy(seed=5, app_factory=KvStore, leases="off")
    client = cluster.new_client(contact_index=0)
    results = run_ops(
        cluster, client, [put("page", b"content"), get("page"), get("page")]
    )
    assert [r.result.content for r in results] == [b"stored", b"content", b"content"]
    core = cluster.cores[0]
    assert core.stats.fast_read_hits == 1  # second read hit the fast path
    # The fast read never entered the ordering pipeline.
    assert core.stats.ordered_requests == 2


def test_cache_shared_across_clients():
    cluster = build_troxy(seed=6, app_factory=KvStore)
    writer = cluster.new_client(contact_index=0)
    run_ops(cluster, writer, [put("shared", b"data"), get("shared")])
    reader = cluster.new_client(contact_index=0)
    results = run_ops(cluster, reader, [get("shared")])
    assert results[0].result.content == b"data"
    assert cluster.cores[0].stats.fast_read_hits == 1


def test_write_invalidates_cache_before_reply():
    """The linearizability core: after a write completes, a fast read can
    never return the old value."""
    cluster = build_troxy(seed=7, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)
    results = run_ops(
        cluster,
        client,
        [put("k", b"v1"), get("k"), put("k", b"v2"), get("k")],
    )
    assert [r.result.content for r in results] == [b"stored", b"v1", b"stored", b"v2"]


def test_fast_read_falls_back_when_remote_cache_cold():
    """A remote Troxy without the entry causes a mismatch -> ordered."""
    cluster = build_troxy(seed=8, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v"), get("k")])
    # Surgically clear one follower's cache (models an enclave reboot).
    cluster.cores[1].cache.clear()
    cluster.cores[2].cache.clear()
    results = run_ops(cluster, client, [get("k")])
    assert results[0].result.content == b"v"
    core = cluster.cores[0]
    assert core.stats.fast_read_conflicts >= 1  # mismatch -> fallback


def test_troxy_counts_stay_within_ecall_budget():
    """The prototype exposes only 16 ecalls; ours must too."""
    cluster = build_troxy(seed=9, app_factory=KvStore)
    for host in cluster.hosts:
        assert len(host.enclave.ecall_names) <= 16


def test_enclave_transitions_happen():
    cluster = build_troxy(seed=10, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("x", b"1"), get("x")])
    assert all(host.enclave.stats.ecalls > 0 for host in cluster.hosts)


def test_ctroxy_has_no_sgx_costs_but_same_semantics():
    # Pins the voted probe path; leases off so the CI lease matrix
    # cannot serve the second read locally (docs/READS.md).
    cluster = build_troxy(
        seed=11, app_factory=KvStore, boundary="jni", leases="off"
    )
    client = cluster.new_client(contact_index=0)
    results = run_ops(cluster, client, [put("x", b"1"), get("x"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"1", b"1"]
    assert cluster.cores[0].stats.fast_read_hits == 1


def test_fast_reads_disabled_orders_everything():
    cluster = build_troxy(seed=12, app_factory=KvStore, fast_reads=False)
    client = cluster.new_client(contact_index=0)
    results = run_ops(cluster, client, [put("x", b"1"), get("x"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"1", b"1"]
    assert cluster.cores[0].stats.fast_read_attempts == 0
    assert cluster.cores[0].stats.ordered_requests == 3
