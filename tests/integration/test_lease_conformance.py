"""Wire-conformance pins for the lease read path (docs/READS.md).

The compatibility contract:

* with leases disabled (the default), the deployment is *byte-for-byte*
  trace-identical to the pre-lease protocol — same messages, same
  sizes, same simulated timestamps (the fig5 anchor),
* with leases enabled but no reads in the workload, nothing lease-
  related ever touches the wire: ORDER messages carrying zero grants
  serialize to the exact pre-lease bytes (``Order.content_digest`` and
  ``wire_size`` are unchanged when ``grants`` is empty),
* a read racing a write's lease revocation is never torn: it serves the
  pre-write state while the lease is live (legal — the write commits
  only after the revocation settles) or goes through the voted path;
  the post-ack read observes the write.
"""

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.hybster.config import LeaseConfig


def wire_trace(cluster) -> list[str]:
    """Every wire send as a rendered record (timestamp included)."""
    return [str(r) for r in cluster.tracer.filter(category="proto.send")]


def run_workload(leases, ops_fn, seed: int = 81, until: float = 30.0):
    cluster = build_troxy(
        seed=seed, app_factory=KvStore, trace=True, leases=leases
    )
    client = cluster.new_client(contact_index=0)
    outcomes = []

    def driver():
        for op in ops_fn():
            res = yield from client.invoke(op)
            outcomes.append(res.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=until)
    return cluster, outcomes


def mixed_ops():
    for i in range(4):
        yield put(f"k{i % 2}", f"v{i}".encode())
        for _ in range(3):
            yield get(f"k{i % 2}")


def write_ops():
    for i in range(8):
        yield put(f"k{i % 3}", f"v{i}".encode())


def test_leases_off_is_wire_identical_to_default(monkeypatch):
    """``leases="off"`` routes through the exact pre-lease code path:
    the full wire trace — reads, writes, fast-read votes — is identical
    to a deployment that never heard of leases."""
    # The CI lease matrix forces leases on for default-config builds;
    # the "default" this pin compares against is the pre-lease protocol.
    monkeypatch.delenv("REPRO_LEASES", raising=False)
    default, default_results = run_workload(None, mixed_ops)
    off, off_results = run_workload("off", mixed_ops)
    assert off_results == default_results
    assert wire_trace(off) == wire_trace(default)
    assert all(core.lease_table is None for core in off.cores)
    assert all(not core.leases_enabled for core in off.cores)


def test_write_only_workload_is_wire_identical_with_leases_on():
    """No reads means no lease requests, no grants, no revocations: an
    ORDER carrying zero grants must serialize byte-for-byte like the
    pre-lease ORDER, so the whole write-path trace pins equal."""
    off, off_results = run_workload("off", write_ops)
    on, on_results = run_workload(True, write_ops)
    assert on_results == off_results
    assert wire_trace(on) == wire_trace(off)
    assert all(core.stats.lease_requests_sent == 0 for core in on.cores)
    leader = on.replicas[0]
    assert leader.stats.lease_grants_attached == 0


def test_lease_state_machine_equivalence():
    """Leases change *where* reads are served, never what anyone
    observes: same client outcomes, same converged application state as
    the voted path."""
    off, off_results = run_workload("off", mixed_ops, seed=82)
    on, on_results = run_workload(True, mixed_ops, seed=82)
    assert on_results == off_results
    off_snaps = {r.app.snapshot() for r in off.replicas}
    on_snaps = {r.app.snapshot() for r in on.replicas}
    assert len(off_snaps) == len(on_snaps) == 1
    assert on_snaps == off_snaps
    # The lease path really ran on the leased deployment.
    assert sum(c.stats.lease_read_hits for c in on.cores) > 0


def test_read_racing_revocation_is_never_torn():
    """A reader hammering a key while a writer updates it: every read
    returns either the old or the new committed value — atomically one
    or the other — and once any read observes the write, no later read
    regresses. The revocation window (write parked, lease still live at
    the holder) must serve the *pre-write* state: the write has not
    committed yet."""
    cluster = build_troxy(
        seed=83, app_factory=KvStore, trace=True,
        leases=LeaseConfig.on(duration=0.4),
    )
    env = cluster.env
    reader = cluster.new_client(contact_index=1)
    writer = cluster.new_client(contact_index=0)
    reads = []
    done = []

    def read_loop():
        # Warm the lease, then read continuously across the write.
        while env.now < 3.0:
            res = yield from reader.invoke(get("k0"))
            reads.append((env.now, res.result.content))
            yield env.timeout(0.02)
        done.append("reader")

    def write_once():
        yield from writer.invoke(put("k0", b"old"))
        yield env.timeout(0.6)  # let the lease install and serve
        yield from writer.invoke(put("k0", b"new"))
        done.append("writer")

    env.process(read_loop())
    env.process(write_once())
    env.run(until=30.0)

    assert set(done) == {"reader", "writer"}
    values = [v for _t, v in reads if v is not None]
    assert set(values) <= {None, b"", b"old", b"new"}, f"torn read: {set(values)}"
    # No regression: once "new" is observed, "old" never comes back.
    first_new = next((i for i, v in enumerate(values) if v == b"new"), None)
    assert first_new is not None, "write never became visible to the reader"
    assert all(v == b"new" for v in values[first_new:]), "read regressed after write"
    # The race actually exercised the lease machinery.
    assert sum(c.stats.lease_read_hits for c in cluster.cores) > 0
    assert sum(c.stats.lease_revocations for c in cluster.cores) >= 1
    assert cluster.replicas[0].stats.lease_writes_parked >= 1


def test_revoked_lease_cannot_serve_after_ack():
    """After the revocation acks and the write commits, the holder's
    next read of the key must reflect the write — the revoke dropped
    the lease *and* the cached entry (shared epoch source)."""
    cluster = build_troxy(
        seed=84, app_factory=KvStore, leases=LeaseConfig.on(duration=5.0)
    )
    env = cluster.env
    reader = cluster.new_client(contact_index=1)
    writer = cluster.new_client(contact_index=0)
    log = []

    def driver():
        yield from writer.invoke(put("k0", b"before"))
        res = yield from reader.invoke(get("k0"))  # leases + caches
        log.append(res.result.content)
        res = yield from reader.invoke(get("k0"))  # served under lease
        log.append(res.result.content)
        yield from writer.invoke(put("k0", b"after"))  # parks, revokes, commits
        res = yield from reader.invoke(get("k0"))
        log.append(res.result.content)

    env.process(driver())
    env.run(until=30.0)
    assert log == [b"before", b"before", b"after"]
