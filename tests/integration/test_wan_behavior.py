"""WAN-specific end-to-end behaviour (small versions of Fig. 7/9 claims)."""

import pytest

from repro.analysis.metrics import Collector
from repro.apps.echo import EchoService
from repro.bench.clusters import WAN_DELAY, build_baseline, build_troxy
from repro.bench.experiments import WAN_CLIENT_NIC, read_source, write_source
from repro.workloads.loadgen import ClosedLoop


def run(cluster, clients, source, sim_time=3.0, warmup=1.0):
    loadgen = ClosedLoop(cluster.env, clients, source, Collector())
    loadgen.start()
    cluster.env.run(until=sim_time)
    return loadgen.collector.summarize(warmup, sim_time)


def test_troxy_latency_is_one_wan_round_trip():
    cluster = build_troxy(
        seed=171, app_factory=lambda: EchoService(reply_size=10),
        wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
    )
    clients = [cluster.new_client() for _ in range(8)]
    summary = run(cluster, clients, write_source(256))
    # ~2 x 100 ms +/- jitter; the BFT machinery adds sub-ms on the LAN.
    assert 0.17 < summary.mean_latency < 0.24


def test_baseline_wan_latency_exceeds_troxy():
    results = {}
    for label, builder in (("bl", build_baseline), ("troxy", build_troxy)):
        cluster = builder(
            seed=172, app_factory=lambda: EchoService(reply_size=1024),
            wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
        )
        if label == "bl":
            clients = [
                cluster.new_client(request_distribution="all") for _ in range(48)
            ]
        else:
            clients = [cluster.new_client() for _ in range(48)]
        results[label] = run(cluster, clients, read_source(), sim_time=4.0)
    # The client-side library's shared connections + multi-reply quorums
    # cost real latency that the server-side voter removes.
    assert results["bl"].mean_latency > results["troxy"].mean_latency
    assert results["troxy"].p95 < results["bl"].p95


def test_troxy_single_reply_saves_client_bandwidth():
    downloads = {}
    for label, builder in (("bl", build_baseline), ("troxy", build_troxy)):
        cluster = builder(
            seed=173, app_factory=lambda: EchoService(reply_size=4096),
            wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
        )
        machines = {m.node.name for m in cluster.machines}
        counted = {"rx": 0}
        original = cluster.net.send

        def counting(src, dst, payload, size=None, _c=counted, _m=machines, _o=original, **kw):
            if size is None:
                size = getattr(payload, "wire_size", 0)
            if dst in _m:
                _c["rx"] += size
            return _o(src, dst, payload, size, **kw)

        cluster.net.send = counting
        if label == "bl":
            clients = [cluster.new_client(request_distribution="all") for _ in range(8)]
        else:
            clients = [cluster.new_client() for _ in range(8)]
        loadgen = ClosedLoop(cluster.env, clients, read_source(), Collector())
        loadgen.start()
        cluster.env.run(until=3.0)
        downloads[label] = counted["rx"] / max(1, loadgen.stats.completed)
    # 2f+1 replies vs one: the legacy client downloads ~1/3 the bytes.
    assert downloads["bl"] > 2.2 * downloads["troxy"]
