"""Crash-recovery and state transfer.

A replica that was down while the cluster advanced past a stable
checkpoint cannot replay the missing slots (peers garbage-collected
them); it must install a checkpointed state it can corroborate with
f+1 witnesses, then resume normal ordering.
"""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline
from repro.hybster.config import ClusterConfig


def make_cluster(seed=91):
    config = ClusterConfig(f=1, checkpoint_interval=8, progress_timeout=2.0)
    return build_baseline(seed=seed, app_factory=KvStore, config=config)


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_recovered_replica_catches_up_via_state_transfer():
    cluster = make_cluster()
    client = cluster.new_client(read_optimization=False)
    crashed = cluster.replicas[2]

    run_ops(cluster, client, [put(f"a{i}", b"x") for i in range(4)])
    crashed.stop()
    # The cluster moves on well past several checkpoints.
    run_ops(cluster, client, [put(f"b{i}", b"y") for i in range(30)])
    assert cluster.replicas[0].stable_seq >= 24

    crashed.restart()
    cluster.env.run(until=cluster.env.now + 30.0)
    assert crashed.stats.state_transfers >= 1
    assert crashed.app.snapshot() == cluster.replicas[0].app.snapshot()

    # And it participates again: new writes reach it.
    run_ops(cluster, client, [put("after", b"recovery")])
    cluster.env.run(until=cluster.env.now + 10.0)
    assert crashed.app.execute(get("after")).content == b"recovery"


def test_recovered_replica_rejects_forged_state():
    cluster = make_cluster(seed=92)
    client = cluster.new_client(read_optimization=False)
    crashed = cluster.replicas[2]
    run_ops(cluster, client, [put(f"a{i}", b"x") for i in range(4)])
    crashed.stop()
    run_ops(cluster, client, [put(f"b{i}", b"y") for i in range(30)])

    # One replica answers state requests with garbage.
    from repro.hybster.messages import StateResponse, Tagged

    liar = cluster.replicas[1]
    original_send = cluster.net.send

    def lying_send(src, dst, payload, size=None, **kwargs):
        if (
            src == liar.replica_id
            and isinstance(payload, Tagged)
            and isinstance(payload.msg, StateResponse)
        ):
            forged = StateResponse(
                payload.msg.seq, b"\xffgarbage-state",
                payload.msg.high_water, liar.replica_id,
            )
            payload = liar._tagged(forged)
        return original_send(src, dst, payload, size, **kwargs)

    cluster.net.send = lying_send
    crashed.restart()
    cluster.env.run(until=cluster.env.now + 30.0)
    # The forged offer never reaches f+1 corroboration, the honest one
    # (from the remaining correct replica + checkpoint votes) wins.
    assert crashed.app.snapshot() == cluster.replicas[0].app.snapshot()
    assert b"garbage-state" not in crashed.app.snapshot()


def test_state_transfer_counts_and_log_bounds():
    cluster = make_cluster(seed=93)
    client = cluster.new_client(read_optimization=False)
    crashed = cluster.replicas[1]
    run_ops(cluster, client, [put("seed", b"1")])
    crashed.stop()
    run_ops(cluster, client, [put(f"k{i}", b"v") for i in range(40)])
    crashed.restart()
    cluster.env.run(until=cluster.env.now + 30.0)
    assert crashed.next_exec > 40
    cut = min(crashed.stable_seq, crashed.next_exec - 1)
    assert all(seq > cut for seq in crashed.log)
