"""Integration tests with f=2 (five replicas) — quorum arithmetic must
generalize beyond the evaluated f=1 deployment."""

import pytest

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline, build_troxy


def run_ops(cluster, client, ops, until=40.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_baseline_f2_basic_operation():
    cluster = build_baseline(seed=51, f=2, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("x", b"v"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"v"]
    snapshots = {r.app.snapshot() for r in cluster.replicas}
    assert len(snapshots) == 1
    assert len(cluster.replicas) == 5


def test_troxy_f2_tolerates_two_byzantine_replicas():
    cluster = build_troxy(seed=52, f=2, app_factory=KvStore)

    class Liar(KvStore):
        def execute(self, op):
            super().execute(op)
            return Payload(b"\xfflies")

    cluster.replicas[3].app = Liar()
    cluster.replicas[4].app = Liar()
    client = cluster.new_client(contact_index=0)
    results = run_ops(cluster, client, [put("x", b"truth"), get("x")])
    assert [r.result.content for r in results] == [b"stored", b"truth"]


def test_troxy_f2_fast_read_uses_two_remote_probes():
    # Pins the voted probe path; leases off so the CI lease matrix
    # cannot serve the second read locally (docs/READS.md).
    cluster = build_troxy(seed=53, f=2, app_factory=KvStore, leases="off")
    client = cluster.new_client(contact_index=0)
    results = run_ops(
        cluster, client, [put("k", b"v"), get("k"), get("k")]
    )
    assert results[-1].result.content == b"v"
    core = cluster.cores[0]
    assert core.stats.fast_read_hits == 1
    # f = 2 remote troxies answered cache queries for the fast read.
    answered = sum(c.stats.cache_queries_answered for c in cluster.cores[1:])
    assert answered == 2


def test_troxy_f2_crashing_two_replicas_still_live():
    cluster = build_troxy(seed=54, f=2, app_factory=KvStore, query_timeout=0.2)
    client = cluster.new_client(contact_index=1, request_timeout=2.0)
    results = run_ops(cluster, client, [put("a", b"1")])
    assert results[0].result.content == b"stored"
    cluster.hosts[3].stop()
    cluster.hosts[4].stop()
    results = run_ops(cluster, client, [put("b", b"2"), get("b")], until=60.0)
    assert [r.result.content for r in results] == [b"stored", b"2"]
