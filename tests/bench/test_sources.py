"""Unit tests for the workload sources used by the experiments."""

import random

import pytest

from repro.apps.base import OpKind
from repro.bench.experiments import mixed_source, read_source, write_source


def test_write_source_shape():
    source = write_source(4096, key_space=8)
    op = source(3, 17)
    assert op.kind is OpKind.WRITE
    assert op.body.size == 4096
    assert op.key.startswith("k")
    assert int(op.key[1:]) < 8


def test_write_source_rotates_keys():
    source = write_source(256, key_space=4)
    keys = {source(i, s).key for i in range(4) for s in range(4)}
    assert keys == {"k0", "k1", "k2", "k3"}


def test_read_source_shape():
    source = read_source(request_size=10, key_space=16)
    op = source(0, 0)
    assert op.kind is OpKind.READ
    assert op.body.size == 10


def test_mixed_source_ratio():
    rng = random.Random(5)
    source = mixed_source(0.25, rng, key_space=4)
    kinds = [source(i, s).kind for i in range(10) for s in range(100)]
    writes = sum(1 for k in kinds if k is OpKind.WRITE)
    assert 0.18 < writes / len(kinds) < 0.32


def test_mixed_source_zero_ratio_is_read_only():
    rng = random.Random(5)
    source = mixed_source(0.0, rng)
    assert all(source(i, s).kind is OpKind.READ for i in range(3) for s in range(20))
