"""Unit tests for the deployment builders."""

import pytest

from repro.apps.kvstore import KvStore
from repro.bench.clusters import (
    WAN_DELAY,
    build_baseline,
    build_prophecy,
    build_standalone,
    build_troxy,
)
from repro.sim.network import NicConfig


def test_baseline_topology():
    cluster = build_baseline(seed=1, app_factory=KvStore)
    assert len(cluster.replicas) == 3
    assert len(cluster.machines) == 2
    assert cluster.leader.replica_id == "replica-0"
    assert {r.replica_id for r in cluster.replicas} == set(cluster.config.replica_ids)


def test_baseline_f2_has_five_replicas():
    cluster = build_baseline(seed=1, f=2, app_factory=KvStore)
    assert len(cluster.replicas) == 5
    assert cluster.config.commit_quorum == 3


def test_app_factory_required():
    with pytest.raises(ValueError):
        build_baseline(seed=1)
    with pytest.raises(ValueError):
        build_troxy(seed=1)


def test_troxy_boundary_selection():
    sgx = build_troxy(seed=1, app_factory=KvStore, boundary="sgx")
    jni = build_troxy(seed=1, app_factory=KvStore, boundary="jni")
    free = build_troxy(seed=1, app_factory=KvStore, boundary="none")
    assert sgx.hosts[0].enclave.costs.per_call > jni.hosts[0].enclave.costs.per_call
    assert free.hosts[0].enclave.costs.per_call == 0.0
    with pytest.raises(ValueError):
        build_troxy(seed=1, app_factory=KvStore, boundary="tpm")


def test_troxy_cores_runtime_profiles():
    sgx = build_troxy(seed=1, app_factory=KvStore, boundary="sgx")
    assert sgx.cores[0].profile.name == "cpp_sgx"
    jni = build_troxy(seed=1, app_factory=KvStore, boundary="jni")
    assert jni.cores[0].profile.name == "cpp"


def test_troxy_client_round_robin_contacts():
    cluster = build_troxy(seed=1, app_factory=KvStore)
    contacts = [cluster.new_client().contact.replica_id for _ in range(6)]
    assert set(contacts) == {"replica-0", "replica-1", "replica-2"}


def test_wan_latency_applied_to_client_links_only():
    cluster = build_troxy(seed=1, app_factory=KvStore, wan=WAN_DELAY)
    overrides = cluster.net._latency_overrides
    assert ("client-machine-0", "replica-0") in overrides
    assert ("replica-0", "client-machine-0") in overrides
    assert ("replica-0", "replica-1") not in overrides  # LAN stays fast


def test_client_nic_override():
    nic = NicConfig(count=1, bandwidth=1000.0)
    cluster = build_baseline(seed=1, app_factory=KvStore, client_nic=nic)
    assert cluster.machines[0].node.nic.bandwidth == 1000.0
    assert cluster.replicas[0].node.nic.bandwidth != 1000.0


def test_standalone_topology():
    cluster = build_standalone(seed=1, app_factory=KvStore)
    assert cluster.server.replica_id == "server-0"
    assert len(cluster.machines) == 2


def test_prophecy_topology():
    cluster = build_prophecy(seed=1, app_factory=KvStore)
    assert cluster.middlebox.replica_id == "prophecy-mb"
    assert len(cluster.replicas) == 3


def test_troxy_enclaves_attested_distinct_instances():
    cluster = build_troxy(seed=1, app_factory=KvStore)
    measurements = {h.enclave.measurement for h in cluster.hosts}
    assert len(measurements) == 1  # same code identity everywhere
    names = {h.enclave.name for h in cluster.hosts}
    assert len(names) == 3  # distinct instances


def test_builders_are_deterministic():
    def run(seed):
        # WAN latency sampling is the stochastic part; the LAN path is
        # fully deterministic regardless of seed.
        cluster = build_troxy(seed=seed, app_factory=KvStore, wan=WAN_DELAY)
        client = cluster.new_client()
        from repro.apps.kvstore import put

        done = []

        def driver():
            outcome = yield from client.invoke(put("k", b"v"))
            done.append((cluster.env.now, outcome.latency))

        cluster.env.process(driver())
        cluster.env.run(until=5.0)
        return done

    assert run(9) == run(9)
    assert run(9) != run(10)
