"""Unit tests for the `python -m repro.bench` CLI (runners stubbed)."""

import pytest

import repro.bench.__main__ as cli


@pytest.fixture
def stubbed(monkeypatch):
    calls = []
    for name in list(cli.RUNNERS):
        monkeypatch.setitem(cli.RUNNERS, name, lambda n=name: calls.append(n))
    return calls


def test_single_experiment(stubbed):
    assert cli.main(["fig6"]) == 0
    assert stubbed == ["fig6"]


def test_multiple_experiments(stubbed):
    cli.main(["fig7", "table1"])
    assert stubbed == ["fig7", "table1"]


def test_all_runs_everything(stubbed):
    cli.main(["all"])
    assert sorted(stubbed) == sorted(cli.RUNNERS)


def test_unknown_experiment_rejected(stubbed):
    with pytest.raises(SystemExit):
        cli.main(["fig99"])
    assert stubbed == []
