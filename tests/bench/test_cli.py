"""Unit tests for the `python -m repro.bench` CLI (runners stubbed)."""

import json

import pytest

import repro.bench.__main__ as cli
from repro.analysis.metrics import Summary
from repro.bench.experiments import Point


@pytest.fixture
def stubbed(monkeypatch):
    calls = []
    for name in list(cli.RUNNERS):
        monkeypatch.setitem(cli.RUNNERS, name, lambda n=name: calls.append(n))
    return calls


def _fake_points(figure):
    summary = Summary(
        count=10, duration=0.25, throughput=40.0, mean_latency=0.002,
        p50=0.002, p95=0.003, p99=0.004, conflict_rate=0.0,
    )
    sim = {"wall_s": 1.25, "steps": 1000, "scheduled_events": 1010}
    return [Point(figure, "etroxy", 128, summary, extra={"sim": sim})]


def test_single_experiment(stubbed):
    assert cli.main(["fig6"]) == 0
    assert stubbed == ["fig6"]


def test_multiple_experiments(stubbed):
    cli.main(["fig7", "table1"])
    assert stubbed == ["fig7", "table1"]


def test_all_runs_everything(stubbed):
    cli.main(["all"])
    assert sorted(stubbed) == sorted(cli.RUNNERS)


def test_unknown_experiment_rejected(stubbed):
    with pytest.raises(SystemExit):
        cli.main(["fig99"])
    assert stubbed == []


def test_json_flag_writes_bench_file(monkeypatch, tmp_path):
    monkeypatch.setitem(cli.RUNNERS, "fig6", lambda: _fake_points("fig6"))
    assert cli.main(["fig6", "--json", str(tmp_path)]) == 0
    payload = json.loads((tmp_path / "BENCH_fig6.json").read_text())
    assert payload["bench"] == "fig6"
    (cell,) = payload["cells"]
    assert cell["system"] == "etroxy"
    assert cell["x"] == 128
    assert cell["throughput_ops"] == 40.0
    assert cell["sim"] == {"wall_s": 1.25, "steps": 1000, "scheduled_events": 1010}


def test_json_flag_table1_writes_rows(tmp_path):
    assert cli.main(["table1", "--json", str(tmp_path)]) == 0
    payload = json.loads((tmp_path / "BENCH_table1.json").read_text())
    systems = [row["system"] for row in payload["rows"]]
    assert systems == ["BL", "Prophecy", "Troxy"]


def test_profile_flag_dumps_pstats(monkeypatch, tmp_path, capsys):
    monkeypatch.setitem(cli.RUNNERS, "fig6", lambda: _fake_points("fig6"))
    assert cli.main(["fig6", "--profile", "--json", str(tmp_path)]) == 0
    assert (tmp_path / "BENCH_fig6.pstats").exists()
    assert (tmp_path / "BENCH_fig6.json").exists()
    assert "Ordered by: cumulative time" in capsys.readouterr().err
