"""Unit tests for result formatting."""

import pytest

from pathlib import Path

from repro.analysis.metrics import Summary
from repro.bench.experiments import Point
from repro.bench.report import (
    RESULTS_DIR,
    format_latency_series,
    format_throughput_series,
    ratio,
    save_and_print,
)


def summary(throughput=100.0, latency=0.01):
    return Summary(
        count=100, duration=1.0, throughput=throughput,
        mean_latency=latency, p50=latency, p95=latency, p99=latency,
        conflict_rate=0.0,
    )


def points():
    return [
        Point("figX", "bl", 256, summary(200.0)),
        Point("figX", "etroxy", 256, summary(100.0)),
        Point("figX", "bl", 1024, summary(150.0)),
        Point("figX", "etroxy", 1024, summary(150.0)),
    ]


def test_throughput_table_contains_all_cells():
    table = format_throughput_series("Title", points())
    assert "Title" in table
    assert "bl" in table and "etroxy" in table
    assert "256" in table and "1024" in table
    assert table.count("op/s") == 4


def test_latency_table_formats_ms():
    table = format_latency_series("Lat", [Point("f", "bl", "wan", summary(latency=0.250))])
    assert "250.00 ms" in table


def test_ratio_lookup():
    assert ratio(points(), "etroxy", "bl", 256) == pytest.approx(0.5)
    assert ratio(points(), "etroxy", "bl", 1024) == pytest.approx(1.0)


def test_ratio_zero_denominator():
    bad = [Point("f", "bl", 1, summary(0.0)), Point("f", "et", 1, summary(1.0))]
    with pytest.raises(ZeroDivisionError):
        ratio(bad, "et", "bl", 1)


def test_ratio_missing_point():
    with pytest.raises(StopIteration):
        ratio(points(), "etroxy", "bl", 9999)


def test_results_dir_is_normalized_path():
    assert isinstance(RESULTS_DIR, Path)
    assert RESULTS_DIR.is_absolute()
    assert ".." not in RESULTS_DIR.parts
    assert RESULTS_DIR.parts[-2:] == ("benchmarks", "results")


def test_save_and_print_writes_table(tmp_path, monkeypatch, capsys):
    import repro.bench.report as report

    monkeypatch.setattr(report, "RESULTS_DIR", tmp_path / "results")
    save_and_print("demo", "a table")
    assert "a table" in capsys.readouterr().out
    assert (tmp_path / "results" / "demo.txt").read_text() == "a table\n"
