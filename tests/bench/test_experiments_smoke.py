"""Smoke tests for the experiment harness (tiny parameters).

These do not assert paper shapes (benchmarks/ does, at full scale);
they assert the harness plumbing: every figure function runs, returns
the right grid of points, and measures something non-trivial.
"""

import pytest

from repro.bench.experiments import (
    fig6_ordered_writes_local,
    fig7_ordered_writes_wan,
    fig8_reads_local,
    fig9_reads_wan,
    fig10_write_contention,
    fig11_http_latency,
    table1_rows,
)


def test_fig6_grid():
    points = fig6_ordered_writes_local(sizes=(256,), n_clients=6, duration=0.1)
    assert {p.system for p in points} == {"bl", "ctroxy", "etroxy"}
    assert all(p.figure == "fig6" for p in points)
    assert all(p.throughput > 0 for p in points)


def test_fig7_grid():
    points = fig7_ordered_writes_wan(sizes=(256,), n_clients=8, duration=1.0)
    assert {p.system for p in points} == {"bl", "etroxy"}
    assert all(p.throughput > 0 for p in points)


def test_fig8_grid():
    points = fig8_reads_local(reply_sizes=(1024,), n_clients=6, duration=0.1)
    assert {p.system for p in points} == {"bl", "etroxy"}
    assert all(p.throughput > 0 for p in points)


def test_fig9_grid():
    points = fig9_reads_wan(reply_sizes=(1024,), n_clients=8, duration=1.0)
    assert all(p.throughput > 0 for p in points)


def test_fig10_grid():
    points = fig10_write_contention(n_clients=6, duration=0.2)
    systems = {p.system for p in points}
    assert systems == {
        "bl-read-opt", "bl-ordered", "troxy-fast-read", "troxy-adaptive", "troxy-ordered",
    }
    assert all(p.throughput > 0 for p in points)


def test_fig11_grid_wan_only():
    points = fig11_http_latency(n_clients=8, total_rate=40.0, duration=1.0, wan_only=True)
    assert {p.system for p in points} == {"jetty", "bl", "prophecy", "troxy"}
    assert all(p.x == "wan" for p in points)
    assert all(p.latency_ms > 100 for p in points)  # the WAN RTT is in there
    assert all(p.summary.count > 0 for p in points)


def test_table1_static_rows():
    rows = table1_rows()
    assert [r.system for r in rows] == ["BL", "Prophecy", "Troxy"]
    assert rows[1].consistency == "Weak"
    assert rows[0].replicas == rows[2].replicas == "2f+1"
