"""End-to-end determinism: an experiment point is exactly reproducible."""

import pytest

from repro.bench.experiments import _run_system, read_source, write_source


def test_same_seed_identical_summaries():
    def once():
        _, summary = _run_system(
            "etroxy", write_source(256), reply_size=10,
            n_clients=8, warmup=0.05, duration=0.1,
        )
        return summary

    a, b = once(), once()
    assert a.count == b.count
    assert a.throughput == b.throughput
    assert a.mean_latency == b.mean_latency
    assert a.p99 == b.p99


def test_different_seed_differs():
    def once(seed):
        _, summary = _run_system(
            "bl", read_source(), reply_size=256,
            n_clients=8, warmup=0.05, duration=0.1, seed=seed,
        )
        return summary

    a, b = once(1), once(2)
    # The LAN jitter differs by seed, so timing-derived numbers differ.
    assert a.mean_latency != b.mean_latency
