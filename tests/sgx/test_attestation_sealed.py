"""Unit tests for attestation and sealed storage."""

import pytest

from repro.crypto import KeyRing, sha256
from repro.sim import Environment, Network, RngTree
from repro.sgx import (
    AttestationError,
    AttestationService,
    Enclave,
    SealedStorage,
    SealError,
    provision_keys,
)


def make_enclave(code_identity="troxy-v1"):
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("replica-0")
    return Enclave(node, "troxy-0", code_identity=code_identity)


def test_quote_verifies_for_enrolled_platform():
    service = AttestationService(b"ias-secret")
    service.register_platform("machine-0")
    enclave = make_enclave()
    quote = service.quote("machine-0", enclave)
    service.verify(quote, enclave.measurement)  # must not raise


def test_unenrolled_platform_rejected():
    service = AttestationService(b"ias-secret")
    enclave = make_enclave()
    with pytest.raises(AttestationError, match="not enrolled"):
        service.quote("rogue-box", enclave)


def test_wrong_measurement_rejected():
    service = AttestationService(b"ias-secret")
    service.register_platform("machine-0")
    evil = make_enclave(code_identity="troxy-v1-backdoored")
    quote = service.quote("machine-0", evil)
    genuine = make_enclave()
    with pytest.raises(AttestationError, match="measurement mismatch"):
        service.verify(quote, genuine.measurement)


def test_forged_quote_rejected():
    service = AttestationService(b"ias-secret")
    impostor = AttestationService(b"not-the-ias")
    impostor.register_platform("machine-0")
    enclave = make_enclave()
    forged = impostor.quote("machine-0", enclave)
    with pytest.raises(AttestationError, match="signature invalid"):
        service.verify(forged, enclave.measurement)


def test_provisioning_releases_keys_only_after_attestation():
    service = AttestationService(b"ias-secret")
    service.register_platform("machine-0")
    enclave = make_enclave()
    ring = KeyRing(b"master-secret-00")
    released = provision_keys(service, "machine-0", enclave, enclave.measurement, ring)
    assert released is ring

    evil = make_enclave(code_identity="troxy-evil")
    with pytest.raises(AttestationError):
        provision_keys(service, "machine-0", evil, enclave.measurement, ring)


def test_sealed_roundtrip():
    storage = SealedStorage(b"platform-secret", sha256(b"code-A"))
    storage.seal("state", b"counter=7")
    assert storage.unseal("state") == b"counter=7"


def test_unseal_missing_returns_none():
    storage = SealedStorage(b"platform-secret", sha256(b"code-A"))
    assert storage.unseal("never-written") is None


def test_tampered_blob_detected():
    storage = SealedStorage(b"platform-secret", sha256(b"code-A"))
    storage.seal("state", b"counter=7")
    storage.tamper("state", b"counter=0")
    with pytest.raises(SealError):
        storage.unseal("state")


def test_tamper_unknown_name_raises():
    storage = SealedStorage(b"platform-secret", sha256(b"code-A"))
    with pytest.raises(KeyError):
        storage.tamper("nope", b"x")
