"""Unit tests for trusted monotonic counters."""

import dataclasses

import pytest

from repro.crypto import KeyRing, sha256
from repro.sgx import CounterError, SealedStorage, TrustedCounterSubsystem


def make_subsystem(subsystem_id="tss-0", storage=None):
    ring = KeyRing(b"master-secret-00")
    return TrustedCounterSubsystem(subsystem_id, ring.troxy_group(), storage=storage)


def test_create_and_current():
    tss = make_subsystem()
    tss.create("order")
    assert tss.current("order") == 0


def test_create_twice_rejected():
    tss = make_subsystem()
    tss.create("order")
    with pytest.raises(CounterError):
        tss.create("order")


def test_unknown_counter_rejected():
    tss = make_subsystem()
    with pytest.raises(CounterError):
        tss.current("missing")


def test_certify_next_increments():
    tss = make_subsystem()
    tss.create("order")
    cert1 = tss.certify_next("order", sha256(b"m1"))
    cert2 = tss.certify_next("order", sha256(b"m2"))
    assert (cert1.value, cert2.value) == (1, 2)
    assert tss.current("order") == 2


def test_certify_at_allows_skips_but_never_regression():
    tss = make_subsystem()
    tss.create("order")
    tss.certify_at("order", 10, sha256(b"m"))
    with pytest.raises(CounterError):
        tss.certify_at("order", 10, sha256(b"other"))
    with pytest.raises(CounterError):
        tss.certify_at("order", 5, sha256(b"older"))
    assert tss.certify_at("order", 11, sha256(b"next")).value == 11


def test_no_two_messages_share_a_counter_value():
    """The core hybrid-fault-model guarantee: equivocation is impossible."""
    tss = make_subsystem()
    tss.create("order")
    cert = tss.certify_next("order", sha256(b"proposal A"))
    with pytest.raises(CounterError):
        tss.certify_at("order", cert.value, sha256(b"proposal B"))


def test_verify_accepts_group_member_certificates():
    alice = make_subsystem("tss-a")
    bob = make_subsystem("tss-b")
    alice.create("order")
    cert = alice.certify_next("order", sha256(b"m"))
    assert bob.verify(cert)


def test_verify_rejects_forged_certificate():
    alice = make_subsystem("tss-a")
    outsider = TrustedCounterSubsystem(
        "tss-evil", KeyRing(b"other-master-0000").troxy_group()
    )
    outsider.create("order")
    forged = outsider.certify_next("order", sha256(b"evil"))
    assert not alice.verify(forged)


def test_verify_rejects_tampered_fields():
    tss = make_subsystem()
    tss.create("order")
    cert = tss.certify_next("order", sha256(b"m"))
    assert not tss.verify(dataclasses.replace(cert, value=99))
    assert not tss.verify(dataclasses.replace(cert, digest=sha256(b"other")))
    assert not tss.verify(dataclasses.replace(cert, subsystem_id="tss-x"))


def test_counters_survive_reboot_via_sealed_storage():
    storage = SealedStorage(b"platform-secret", sha256(b"code"))
    tss = make_subsystem(storage=storage)
    tss.create("order")
    tss.certify_at("order", 41, sha256(b"m"))
    # Reboot: a new subsystem instance over the same sealed storage.
    tss2 = make_subsystem(storage=storage)
    assert tss2.current("order") == 41
    with pytest.raises(CounterError):
        tss2.certify_at("order", 41, sha256(b"rollback attempt"))


def test_certificate_wire_size_positive():
    tss = make_subsystem()
    tss.create("c")
    cert = tss.certify_next("c", sha256(b"m"))
    assert cert.wire_size > 40
