"""Unit tests for the enclave boundary model."""

import pytest

from repro.sim import Environment, Network, RngTree
from repro.sgx import (
    JNI_CALL,
    SGX_ECALL,
    BoundaryCosts,
    Enclave,
    EnclaveViolation,
    jni_enclave,
    null_enclave,
)


def make_enclave(**kwargs):
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("replica-0")
    enclave = Enclave(node, "troxy-0", code_identity="troxy-v1", **kwargs)
    return env, node, enclave


def run_ecall(env, enclave, name, *args, **kwargs):
    results = []

    def proc():
        result = yield from enclave.ecall(name, *args, **kwargs)
        results.append((env.now, result))

    env.process(proc())
    env.run()
    return results[0]


def test_ecall_invokes_registered_function():
    env, node, enclave = make_enclave()
    enclave.register_ecall("add", lambda a, b: a + b)
    _, result = run_ecall(env, enclave, "add", 2, 3)
    assert result == 5


def test_unregistered_ecall_rejected():
    env, node, enclave = make_enclave()

    def proc():
        yield from enclave.ecall("steal_key")

    env.process(proc())
    with pytest.raises(EnclaveViolation):
        env.run()


def test_duplicate_ecall_name_rejected():
    env, node, enclave = make_enclave()
    enclave.register_ecall("f", lambda: None)
    with pytest.raises(ValueError):
        enclave.register_ecall("f", lambda: None)


def test_ecall_charges_transition_cost():
    env, node, enclave = make_enclave()
    enclave.register_ecall("noop", lambda: None)
    time, _ = run_ecall(env, enclave, "noop")
    assert time == pytest.approx(SGX_ECALL.per_call)


def test_ecall_charges_copy_costs():
    env, node, enclave = make_enclave()
    enclave.register_ecall("noop", lambda: None)
    time, _ = run_ecall(env, enclave, "noop", bytes_in=8192, bytes_out=4096)
    expected = SGX_ECALL.cost(8192, 4096)
    assert time == pytest.approx(expected)
    assert enclave.stats.bytes_copied_in == 8192
    assert enclave.stats.bytes_copied_out == 4096


def test_generator_ecall_driven_to_completion():
    env, node, enclave = make_enclave()

    def trusted_work():
        yield from node.compute(1e-3)
        return "done"

    enclave.register_ecall("work", trusted_work)
    time, result = run_ecall(env, enclave, "work")
    assert result == "done"
    assert time == pytest.approx(SGX_ECALL.per_call + 1e-3)


def test_ecall_stats_count():
    env, node, enclave = make_enclave()
    enclave.register_ecall("noop", lambda: None)
    run_ecall(env, enclave, "noop")
    assert enclave.stats.ecalls == 1


def test_jni_boundary_cheaper_than_sgx():
    assert JNI_CALL.cost(1024, 1024) < SGX_ECALL.cost(1024, 1024)


def test_null_enclave_costs_nothing():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("n")
    enclave = null_enclave(node, "lib")
    enclave.register_ecall("noop", lambda: None)
    time, _ = run_ecall(env, enclave, "noop", bytes_in=100000)
    assert time == 0.0


def test_jni_enclave_has_measurement():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("n")
    enclave = jni_enclave(node, "ctroxy")
    assert len(enclave.measurement) == 32


def test_measurement_depends_on_code_identity():
    _, _, e1 = make_enclave()
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("other")
    e2 = Enclave(node, "troxy-x", code_identity="troxy-v2-evil")
    assert e1.measurement != e2.measurement


def test_memory_within_epc_is_free():
    env, node, enclave = make_enclave()
    enclave.allocate(1024 * 1024)
    times = []

    def proc():
        yield from enclave.touch(1024 * 1024)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [0.0]


def test_memory_beyond_epc_pays_paging():
    env, node, enclave = make_enclave(epc_bytes=1024 * 1024)
    enclave.allocate(4 * 1024 * 1024)
    times = []

    def proc():
        yield from enclave.touch(1024 * 1024)
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times[0] > 0.0
    assert enclave.stats.pages_swapped > 0


def test_free_reduces_resident_set():
    env, node, enclave = make_enclave()
    enclave.allocate(1000)
    enclave.free(400)
    assert enclave.resident_bytes == 600
    enclave.free(10_000)
    assert enclave.resident_bytes == 0


def test_negative_allocation_rejected():
    env, node, enclave = make_enclave()
    with pytest.raises(ValueError):
        enclave.allocate(-1)


def test_reboot_runs_hooks_and_resets_memory():
    env, node, enclave = make_enclave()
    wiped = []
    enclave.on_reboot(lambda: wiped.append(True))
    enclave.allocate(5000)
    enclave.reboot()
    assert wiped == [True]
    assert enclave.resident_bytes == 0
    assert enclave.stats.reboots == 1


def test_boundary_cost_validation():
    costs = BoundaryCosts(1e-6, 1e-9, 1e-9)
    with pytest.raises(ValueError):
        costs.cost(-1, 0)
