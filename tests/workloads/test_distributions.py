"""Unit + property tests for key-access distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import HotspotKeys, UniformKeys, ZipfKeys


def draw(dist, n=10000, seed=7):
    rng = random.Random(seed)
    return Counter(dist.sample(rng) for _ in range(n))


def test_uniform_covers_key_space_evenly():
    counts = draw(UniformKeys(10))
    assert set(counts) == {f"k{i}" for i in range(10)}
    assert max(counts.values()) < 2 * min(counts.values())


def test_zipf_is_head_heavy():
    counts = draw(ZipfKeys(1000, exponent=0.99))
    top = counts["k0"]
    mid = counts.get("k499", 0)
    assert top > 20 * max(1, mid)
    # Rank ordering roughly holds at the head.
    assert counts["k0"] > counts.get("k9", 0)


def test_zipf_low_exponent_flattens():
    skewed = draw(ZipfKeys(100, exponent=1.2))
    flat = draw(ZipfKeys(100, exponent=0.2))
    assert skewed["k0"] > flat["k0"]


def test_hotspot_fraction_respected():
    counts = draw(HotspotKeys(100, hot_keys=2, hot_fraction=0.8))
    hot = counts["k0"] + counts["k1"]
    assert 0.75 < hot / 10000 < 0.85


def test_hotspot_whole_space_hot():
    counts = draw(HotspotKeys(5, hot_keys=5, hot_fraction=0.5))
    assert set(counts) <= {f"k{i}" for i in range(5)}


def test_parameter_validation():
    with pytest.raises(ValueError):
        UniformKeys(0)
    with pytest.raises(ValueError):
        ZipfKeys(10, exponent=0.0)
    with pytest.raises(ValueError):
        HotspotKeys(10, hot_keys=11)
    with pytest.raises(ValueError):
        HotspotKeys(10, hot_fraction=1.5)


@given(st.integers(1, 500), st.floats(0.1, 2.0), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_zipf_samples_always_in_range(key_space, exponent, seed):
    dist = ZipfKeys(key_space, exponent=exponent)
    rng = random.Random(seed)
    for _ in range(20):
        key = dist.sample(rng)
        assert 0 <= int(key[1:]) < key_space


@given(st.integers(1, 200), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_uniform_samples_always_in_range(key_space, seed):
    dist = UniformKeys(key_space)
    rng = random.Random(seed)
    for _ in range(20):
        assert 0 <= int(dist.sample(rng)[1:]) < key_space
