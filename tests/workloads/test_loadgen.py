"""Unit tests for the load generators (with a stub service)."""

import pytest

from repro.analysis.metrics import Collector
from repro.apps.base import Operation, OpKind, Payload
from repro.hybster.client import InvokeResult
from repro.sim import Environment
from repro.workloads.loadgen import ClosedLoop, PacedLoop, measure


class StubClient:
    """Deterministic fake service: fixed latency per invocation."""

    def __init__(self, env, latency=0.01):
        self.env = env
        self.latency = latency
        self.invocations = 0

    def invoke(self, op):
        self.invocations += 1
        start = self.env.now
        yield self.env.timeout(self.latency)
        return InvokeResult(Payload(b"ok"), self.env.now - start)


def op_source(i, seq):
    return Operation(OpKind.READ, "get", key=f"k{i}")


def test_closed_loop_throughput_matches_latency():
    env = Environment()
    clients = [StubClient(env, latency=0.01) for _ in range(4)]
    loadgen = ClosedLoop(env, clients, op_source, Collector())
    summary = measure(env, loadgen, warmup=0.1, duration=1.0)
    # 4 clients x 100/s each
    assert summary.throughput == pytest.approx(400, rel=0.05)
    assert summary.mean_latency == pytest.approx(0.01, rel=0.01)


def test_closed_loop_think_time_reduces_rate():
    env = Environment()
    clients = [StubClient(env, latency=0.01)]
    loadgen = ClosedLoop(env, clients, op_source, Collector(), think_time=0.09)
    summary = measure(env, loadgen, warmup=0.1, duration=1.0)
    assert summary.throughput == pytest.approx(10, rel=0.1)


def test_paced_loop_holds_target_rate():
    env = Environment()
    clients = [StubClient(env, latency=0.001) for _ in range(10)]
    loadgen = PacedLoop(env, clients, op_source, Collector(), rate_per_client=5.0)
    summary = measure(env, loadgen, warmup=1.0, duration=4.0)
    assert summary.throughput == pytest.approx(50, rel=0.1)
    # Not saturating: latency equals the service latency.
    assert summary.mean_latency == pytest.approx(0.001, rel=0.05)


def test_paced_loop_skips_beats_when_slow():
    env = Environment()
    clients = [StubClient(env, latency=0.5)]  # slower than the 0.1 s interval
    loadgen = PacedLoop(env, clients, op_source, Collector(), rate_per_client=10.0)
    summary = measure(env, loadgen, warmup=0.5, duration=2.0)
    # Degrades to roughly the closed-loop rate (1/0.5 s = 2/s; window
    # boundary effects allow one extra completion) instead of piling up.
    assert 1.5 <= summary.throughput <= 3.0


def test_paced_loop_rejects_bad_rate():
    env = Environment()
    with pytest.raises(ValueError):
        PacedLoop(env, [], op_source, Collector(), rate_per_client=0.0)


def test_loadgen_stats_track_completion():
    env = Environment()
    clients = [StubClient(env)]
    loadgen = ClosedLoop(env, clients, op_source, Collector())
    loadgen.start()
    env.run(until=0.1)
    assert loadgen.stats.started >= loadgen.stats.completed > 0
