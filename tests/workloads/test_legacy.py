"""Unit tests for the legacy client against a scripted stub server."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.crypto import KeyRing, establish_session
from repro.hybster.client import ClientMachine
from repro.hybster.messages import Reply, Request
from repro.hybster.secure import SecureEnvelope, open_body, seal_body
from repro.sim import Environment, Network, RngTree
from repro.workloads.legacy import LegacyClient


class StubServer:
    """Minimal contact point implementing the TroxyHost duck type."""

    def __init__(self, env, net, node, keyring, behaviour="echo"):
        self.env = env
        self.net = net
        self.node = node
        self.keyring = keyring
        self.behaviour = behaviour
        self.requests_seen = 0
        self._sessions = {}
        env.process(self._loop())

    @property
    def replica_id(self):
        return self.node.name

    def install_client_session(self, client_id, endpoint):
        self._sessions[client_id] = endpoint
        return
        yield

    def _loop(self):
        while True:
            msg = yield self.node.inbox.get()
            payload = msg.payload
            if not isinstance(payload, SecureEnvelope):
                continue
            request = payload.body
            endpoint = self._sessions.get(request.client_id)
            if endpoint is None:
                continue
            open_body(endpoint, payload)
            self.requests_seen += 1
            if self.behaviour == "silent":
                continue
            reply = Reply(
                self.node.name, request.client_id, request.request_id,
                Payload(b"echo:" + request.op.key.encode()), request.digest(),
            )
            self.net.send(self.node.name, msg.src, seal_body(endpoint, reply))


@pytest.fixture
def world():
    env = Environment()
    net = Network(env, rng_tree=RngTree(2))
    keyring = KeyRing(b"master-secret-00")
    servers = []
    for i in range(2):
        node = net.add_node(f"server-{i}")
        servers.append(StubServer(env, net, node, keyring))
    machine = ClientMachine(env, net, net.add_node("client-machine-0"))
    return env, net, keyring, servers, machine


def make_client(world, **kwargs):
    env, net, keyring, servers, machine = world
    client = LegacyClient(machine, "client-1", keyring, servers, **kwargs)
    return client


def op(key="k"):
    return Operation(OpKind.READ, "get", key)


def test_invoke_before_connect_rejected(world):
    env = world[0]
    client = make_client(world)
    with pytest.raises(RuntimeError):
        next(client.invoke(op()))


def test_connect_instant_and_invoke(world):
    env = world[0]
    client = make_client(world)
    client.connect_instant()
    results = []

    def driver():
        outcome = yield from client.invoke(op("alpha"))
        results.append(outcome.result.content)

    env.process(driver())
    env.run(until=5.0)
    assert results == [b"echo:alpha"]


def test_connect_with_handshake_costs_time(world):
    env = world[0]
    client = make_client(world)

    def driver():
        yield from client.connect()
        outcome = yield from client.invoke(op("x"))
        assert outcome.result.content == b"echo:x"

    env.process(driver())
    env.run(until=5.0)
    assert client._endpoint is not None


def test_timeout_triggers_failover_to_next_server(world):
    env, net, keyring, servers, machine = world
    servers[0].behaviour = "silent"
    client = make_client(world, request_timeout=0.5)
    client.connect_instant()
    results = []

    def driver():
        outcome = yield from client.invoke(op("y"))
        results.append((outcome.result.content, outcome.retries))

    env.process(driver())
    env.run(until=10.0)
    assert results == [(b"echo:y", 1)]
    assert client.stats.failovers == 1
    assert client.contact is servers[1]


def test_stale_reply_for_old_request_id_is_ignored(world):
    env, net, keyring, servers, machine = world
    client = make_client(world)
    client.connect_instant()
    # Inject a stale reply sealed on the real session before invoking.
    server = servers[0]
    results = []

    def driver():
        # Warm up one real request so the session seq advances.
        outcome = yield from client.invoke(op("first"))
        results.append(outcome.result.content)
        outcome = yield from client.invoke(op("second"))
        results.append(outcome.result.content)

    env.process(driver())
    env.run(until=5.0)
    assert results == [b"echo:first", b"echo:second"]
    assert client.stats.invalid_replies == 0


def test_client_counts_invalid_replies_on_garbage(world):
    env, net, keyring, servers, machine = world
    client = make_client(world, request_timeout=0.5)
    client.connect_instant()

    # A forged envelope not sealed under the session key.
    evil = establish_session(b"attacker-secret!", "client-1", "server-0")
    request = Request("client-1", 99, op(), origin="client-machine-0")
    fake_reply = Reply("server-0", "client-1", 1, Payload(b"fake"), request.digest())
    forged = seal_body(evil.server, fake_reply)

    def driver():
        inject = client._inbox
        inject.put(forged)
        outcome = yield from client.invoke(op("real"))
        assert outcome.result.content == b"echo:real"

    env.process(driver())
    env.run(until=5.0)
    assert client.stats.invalid_replies == 1
