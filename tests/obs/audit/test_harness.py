"""End-to-end audit runs: localization, signed bundles, determinism, CLI."""

import json

from repro.bench.clusters import MASTER_SECRET
from repro.crypto.keys import KeyRing
from repro.obs.audit import verify_bundle
from repro.obs.audit.__main__ import main as audit_main
from repro.obs.audit.auditor import Verdict
from repro.obs.audit.harness import run_localization, score_blame


def _group_key():
    # The offline verifier needs only the deployment's master secret,
    # not the cluster: the group key is derivable from it alone.
    return KeyRing(MASTER_SECRET).troxy_group()


def test_host_tamper_is_localized():
    run = run_localization("host_tamper_replies", seed=1)
    assert run["triggered"]
    assert run["ok"]
    assert run["localized"] == ["tamper:replica-0"]
    kinds = {v["kind"] for v in run["verdicts"]}
    assert "tamper" in kinds
    assert run["checkpoints"] > 0


def test_healthy_control_never_triggers_the_auditor():
    run = run_localization("healthy_control", seed=1)
    assert not run["triggered"]
    assert run["verdicts"] == []
    assert run["ok"]
    # Probes still ran: the ledgers exist even though the auditor slept.
    assert run["ledger_entries"] > 0


def test_crash_is_localized_as_omission():
    run = run_localization("troxy_crash_failover", seed=1)
    assert run["ok"]
    omissions = [v for v in run["verdicts"] if v["kind"] == "omission"]
    assert [v["culprits"] for v in omissions] == [["replica-1"]]


def test_partition_blames_links_not_nodes():
    run = run_localization("partition_minority", seed=1)
    assert run["ok"]
    assert not any(
        v["kind"] in ("omission", "tamper") for v in run["verdicts"]
    )


def test_evidence_bundle_verifies_offline_and_detects_mutation():
    run = run_localization("host_tamper_replies", seed=1)
    bundle = json.loads(json.dumps(run["plane"].evidence_bundle()))
    key = _group_key()
    check = verify_bundle(bundle, key=key)
    assert check.ok, check.problems

    forged = json.loads(json.dumps(bundle))
    victim = sorted(forged["payload"]["ledgers"])[0]
    forged["payload"]["ledgers"][victim]["entries"][0]["peer"] = "replica-9"
    check = verify_bundle(forged, key=key)
    assert not check.ok
    assert any("chain broken" in p for p in check.problems)
    assert any("signature" in p for p in check.problems)


def test_same_seed_bundles_are_byte_identical():
    def bundle_bytes():
        run = run_localization("host_tamper_replies", seed=2)
        return json.dumps(
            run["plane"].evidence_bundle(), sort_keys=True
        ).encode()

    assert bundle_bytes() == bundle_bytes()


def test_score_blame_counts_wrongly_blamed_replicas():
    ground = [{"blame": "tamper", "targets": ["replica-0"], "required": True}]
    good = [Verdict("tamper", ("replica-0",), 0.1, "d")]
    framing = [
        Verdict("tamper", ("replica-0",), 0.1, "d"),
        Verdict("omission", ("replica-1",), 0.2, "d"),
    ]
    assert score_blame(good, ground) == {
        "localized": ["tamper:replica-0"], "missed": [], "false_blame": [],
    }
    score = score_blame(framing, ground)
    assert score["false_blame"] == ["node:replica-1"]


def test_score_blame_permits_partition_links_only():
    ground = [{
        "blame": "link", "required": False,
        "pairs": [["replica-0", "replica-2"], ["replica-1", "replica-2"]],
    }]
    hedged = [Verdict(
        "link_omission",
        ("replica-0->replica-2", "replica-2->replica-1"), 0.1, "d",
    )]
    stray = [Verdict("link_omission", ("replica-0->replica-1",), 0.1, "d")]
    assert score_blame(hedged, ground)["false_blame"] == []
    assert score_blame(stray, ground)["false_blame"] == [
        "link:replica-0->replica-1",
    ]


def test_cli_roundtrip(tmp_path):
    out = tmp_path / "audit-run"
    results = tmp_path / "blame.txt"
    code = audit_main([
        "--scenarios", "host_tamper_replies",
        "--out", str(out), "--results", str(results),
    ])
    assert code == 0
    cell = out / "host_tamper_replies-seed1-sh1-boff"
    evidence = json.loads((cell / "evidence.json").read_text())
    assert verify_bundle(evidence, key=_group_key()).ok
    audit = json.loads((cell / "audit.json").read_text())
    assert audit["triggered"] and audit["verdict_counts"].get("tamper") == 1
    assert (cell / "health.json").exists()
    table = results.read_text()
    assert "LOCALIZED" in table and "FALSE-BLAME" not in table
    report = json.loads((out / "blame.json").read_text())
    assert report["summary"]["localized"] == report["summary"]["attributable"]
