"""Auditor verdicts over hand-built ledgers: each proof class in isolation."""

from repro.crypto.primitives import MacKey, digest_of
from repro.obs.audit.auditor import Auditor
from repro.obs.audit.ledger import MessageLedger
from repro.sgx.counters import _auth_input

KEY = MacKey("audit-test", b"audit-test-group-key")
REPLICAS = frozenset({"replica-0", "replica-1", "replica-2"})


def _auditor(**kwargs):
    return Auditor(group_key=KEY, **kwargs)


def _cert(subsystem, counter, value, digest):
    return (subsystem, counter, value, digest,
            KEY.sign(_auth_input(subsystem, counter, value, digest)))


def _exchange(ledgers, t, src, dst, kind="Order", digest=None, ident=None,
              cert=None, deliver=True, delivered_digest=None):
    """One message: a send entry on src, optionally a recv entry on dst."""
    digest = digest if digest is not None else digest_of(repr((src, dst, t)).encode())
    ledgers.setdefault(src, MessageLedger(src)).append(
        t, "send", dst, kind, digest, ident, cert)
    if deliver:
        ledgers.setdefault(dst, MessageLedger(dst)).append(
            t + 0.0001, "recv", src, kind,
            delivered_digest if delivered_digest is not None else digest,
            ident, cert)
    return digest


def test_clean_exchange_yields_no_verdicts():
    ledgers = {}
    for i in range(10):
        _exchange(ledgers, i * 0.01, "replica-0", "replica-1")
        _exchange(ledgers, i * 0.01, "replica-1", "replica-0")
    assert _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS) == []


def test_tamper_pins_the_diverging_sender():
    ledgers = {}
    _exchange(ledgers, 0.01, "replica-0", "client-machine-0",
              kind="SecureEnvelope:Reply", ident=("reply", "client-0", 1))
    _exchange(ledgers, 0.02, "replica-0", "client-machine-0",
              kind="SecureEnvelope:Reply", ident=("reply", "client-0", 2),
              delivered_digest=b"\xee" * 32)
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert [v.kind for v in verdicts] == ["tamper"]
    assert verdicts[0].culprits == ("replica-0",)
    assert verdicts[0].proof["mismatches"][0]["ident"] == ["reply", "client-0", 2]


def test_equivocation_needs_two_verified_certs_same_slot():
    ledgers = {}
    # replica-0 certifies two different order digests under the same
    # counter value — impossible for honest trusted hardware.
    d1, d2 = b"\x01" * 32, b"\x02" * 32
    _exchange(ledgers, 0.01, "replica-0", "replica-1", digest=d1,
              ident=("order", 0, 5), cert=_cert("tss-replica-0", "order/0", 5, d1))
    _exchange(ledgers, 0.02, "replica-0", "replica-2", digest=d2,
              ident=("order", 0, 5), cert=_cert("tss-replica-0", "order/0", 5, d2))
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    kinds = [v.kind for v in verdicts]
    assert "equivocation" in kinds
    equivocation = verdicts[kinds.index("equivocation")]
    assert equivocation.culprits == ("tss-replica-0",)
    assert equivocation.proof["value"] == 5


def test_forged_certs_do_not_frame_a_replica():
    ledgers = {}
    d1, d2 = b"\x01" * 32, b"\x02" * 32
    bad = ("tss-replica-0", "order/0", 5, d2, b"\x00" * 32)  # invalid tag
    _exchange(ledgers, 0.01, "replica-0", "replica-1", digest=d1,
              ident=("order", 0, 5), cert=_cert("tss-replica-0", "order/0", 5, d1))
    _exchange(ledgers, 0.02, "replica-1", "replica-2", digest=d2,
              ident=("order", 0, 5), cert=bad)
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert not any(v.kind == "equivocation" for v in verdicts)


def test_omission_blames_a_silent_replica():
    ledgers = {}
    # Three senders attest sends to replica-2; its ledger stays empty.
    for t, src in ((0.10, "replica-0"), (0.11, "replica-1"),
                   (0.12, "replica-0"), (0.13, "client-machine-0")):
        _exchange(ledgers, t, src, "replica-2", deliver=False)
    ledgers["replica-2"] = MessageLedger("replica-2")
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert [v.kind for v in verdicts] == ["omission"]
    assert verdicts[0].culprits == ("replica-2",)
    assert verdicts[0].proof["unreceived"] == 4


def test_partition_hedges_to_links_when_suspect_is_active():
    ledgers = {}
    for t, src in ((0.10, "replica-0"), (0.11, "replica-1"),
                   (0.12, "replica-0"), (0.13, "replica-1")):
        _exchange(ledgers, t, src, "replica-2", deliver=False)
    # replica-2 keeps talking to its own side of the cut.
    _exchange(ledgers, 0.115, "client-machine-2", "replica-2")
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert [v.kind for v in verdicts] == ["link_omission"]
    assert verdicts[0].culprits == (
        "replica-0->replica-2", "replica-1->replica-2",
    )


def test_in_flight_tail_is_not_omission():
    ledgers = {}
    for t, src in ((0.90, "replica-0"), (0.91, "replica-1"),
                   (0.92, "replica-0")):
        _exchange(ledgers, t, src, "replica-2", deliver=False)
    ledgers["replica-2"] = MessageLedger("replica-2")
    # All sends are within the grace window of the audit instant.
    verdicts = _auditor(grace=0.25).reconcile(
        ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert verdicts == []


def test_contention_flags_the_dominant_writer():
    ledgers = {}
    for rid in range(4):
        _exchange(ledgers, 0.01 * rid, "client-machine-0", "replica-0",
                  kind="SecureEnvelope:Request",
                  ident=("request", "client-0", rid, "w"))
    for rid in range(64):
        _exchange(ledgers, 0.3 + 0.001 * rid, "client-machine-1", "replica-0",
                  kind="SecureEnvelope:Request",
                  ident=("request", "attacker", rid, "w"))
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert [v.kind for v in verdicts] == ["contention"]
    assert verdicts[0].culprits == ("attacker",)
    assert verdicts[0].proof["writes"]["attacker"] == 64


def test_reads_never_count_toward_contention():
    ledgers = {}
    for rid in range(64):
        _exchange(ledgers, 0.001 * rid, "client-machine-0", "replica-0",
                  kind="SecureEnvelope:Request",
                  ident=("request", "client-0", rid, "r"))
    verdicts = _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)
    assert verdicts == []


def test_verdicts_are_sorted_and_deterministic():
    def build():
        ledgers = {}
        _exchange(ledgers, 0.02, "replica-1", "client-machine-0",
                  kind="SecureEnvelope:Reply", ident=("reply", "client-0", 1),
                  delivered_digest=b"\xaa" * 32)
        for t, src in ((0.10, "replica-0"), (0.11, "replica-1"),
                       (0.12, "client-machine-0")):
            _exchange(ledgers, t, src, "replica-2", deliver=False)
        ledgers.setdefault("replica-2", MessageLedger("replica-2"))
        return _auditor().reconcile(ledgers, end_t=1.0, replica_ids=REPLICAS)

    first, second = build(), build()
    assert [v.as_dict() for v in first] == [v.as_dict() for v in second]
    assert [v.kind for v in first] == sorted(v.kind for v in first)
