"""Hash-chained ledgers: append, checkpoint fencing, offline verify."""

import pytest

from repro.crypto.primitives import MacKey
from repro.obs.audit.ledger import (
    MessageLedger,
    genesis_hash,
    verify_ledger_dict,
)
from repro.sgx.counters import (
    LEDGER_COUNTER,
    CounterError,
    TrustedCounterSubsystem,
    certify_ledger_checkpoint,
)

KEY = MacKey("audit-test", b"audit-test-group-key")


def _subsystem(subsystem_id="tss-replica-0"):
    return TrustedCounterSubsystem(subsystem_id, KEY)


def _ledger_with(n=5, node="replica-0"):
    ledger = MessageLedger(node)
    for i in range(n):
        ledger.append(
            t=i * 0.001, direction="send" if i % 2 == 0 else "recv",
            peer=f"replica-{1 + i % 2}", kind="Order",
            digest=bytes([i]) * 32, ident=("order", 0, i),
        )
    return ledger


def test_chain_links_entries():
    ledger = _ledger_with(3)
    assert ledger.entries[0].prev_hash == genesis_hash("replica-0")
    for prev, entry in zip(ledger.entries, ledger.entries[1:]):
        assert entry.prev_hash == prev.hash
    assert ledger.head == ledger.entries[-1].hash


def test_certify_ledger_checkpoint_creates_and_advances():
    tss = _subsystem()
    cert1 = certify_ledger_checkpoint(tss, 1, b"\x01" * 32)
    cert2 = certify_ledger_checkpoint(tss, 2, b"\x02" * 32)
    assert cert1.counter_name == LEDGER_COUNTER
    assert (cert1.value, cert2.value) == (1, 2)
    assert tss.verify(cert1) and tss.verify(cert2)


def test_certify_ledger_checkpoint_fences_rewinds():
    tss = _subsystem()
    certify_ledger_checkpoint(tss, 3, b"\x03" * 32)
    # A host that rewound its ledger cannot re-certify an old (or the
    # same) checkpoint number — sealed-counter fencing.
    with pytest.raises(CounterError):
        certify_ledger_checkpoint(tss, 3, b"\x04" * 32)
    with pytest.raises(CounterError):
        certify_ledger_checkpoint(tss, 2, b"\x05" * 32)


def test_verify_ledger_dict_accepts_intact_ledger():
    tss = _subsystem()
    ledger = _ledger_with(6)
    ledger.add_checkpoint(1, 4, ledger.entries[3].hash,
                          certify_ledger_checkpoint(tss, 1, ledger.entries[3].hash))
    assert verify_ledger_dict(ledger.as_dict(), key=KEY) == []


def test_verify_ledger_dict_detects_entry_mutation():
    ledger = _ledger_with(6)
    data = ledger.as_dict()
    data["entries"][2]["peer"] = "replica-9"
    problems = verify_ledger_dict(data, key=KEY)
    assert any("chain broken at entry 2" in p for p in problems)


def test_verify_ledger_dict_detects_truncation():
    ledger = _ledger_with(6)
    data = ledger.as_dict()
    data["entries"].pop()
    problems = verify_ledger_dict(data, key=KEY)
    assert any("declared head" in p for p in problems)


def test_verify_ledger_dict_detects_checkpoint_abuse():
    tss = _subsystem()
    ledger = _ledger_with(6)
    head = ledger.entries[3].hash
    cert = certify_ledger_checkpoint(tss, 1, head)
    ledger.add_checkpoint(1, 4, head, cert)
    data = ledger.as_dict()

    rewound = {**data, "checkpoints": [
        data["checkpoints"][0], {**data["checkpoints"][0]},
    ]}
    assert any("fencing" in p for p in verify_ledger_dict(rewound, key=KEY))

    wrong_head = {**data, "checkpoints": [
        {**data["checkpoints"][0], "head": "00" * 32, "cert": [
            cert.subsystem_id, cert.counter_name, cert.value,
            "00" * 32, cert.tag.hex(),
        ]},
    ]}
    problems = verify_ledger_dict(wrong_head, key=KEY)
    assert any("head does not match chain" in p for p in problems)
    assert any("HMAC invalid" in p for p in problems)


def test_verify_ledger_dict_rejects_forged_genesis():
    data = _ledger_with(1, node="replica-1").as_dict()
    data["node"] = "replica-2"
    problems = verify_ledger_dict(data, key=KEY)
    assert any("genesis" in p for p in problems)
