"""Tests for the ``python -m repro.obs`` entry point."""

import json

import pytest

from repro.obs.__main__ import main


def test_cli_writes_reports_and_summary(tmp_path, capsys):
    out = tmp_path / "report"
    code = main([
        "--out", str(out), "--seed", "5", "--clients", "2",
        "--warmup", "0.01", "--duration", "0.03",
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "requests completed:" in text
    assert "ecall transitions:" in text
    for name in ("metrics.prom", "metrics.jsonl", "trace.json"):
        assert (out / name).exists()
    doc = json.loads((out / "trace.json").read_text())
    assert doc["traceEvents"]


def test_cli_format_subset(tmp_path):
    out = tmp_path / "report"
    assert main([
        "--out", str(out), "--clients", "2", "--warmup", "0.01",
        "--duration", "0.02", "--formats", "prometheus",
    ]) == 0
    assert (out / "metrics.prom").exists()
    assert not (out / "trace.json").exists()


def test_cli_rejects_unknown_format(tmp_path):
    with pytest.raises(SystemExit):
        main(["--out", str(tmp_path), "--formats", "protobuf"])
