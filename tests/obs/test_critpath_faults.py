"""Queue-span lifecycle under faults: leader crash with batching live.

The batch-queue probes (``hybster.queue``) bracket the leader's
:class:`BatchAssembler` buffer; a leader crash mid-pipeline exercises
every exit path at once — normal flushes on the old leader, the
view-change backlog drop on survivors, and in-flight spans at the
horizon. Whatever the path, every queue span must close exactly once
with an accounted reason, and attribution over the surviving traces
must still cover each completed request fully.
"""

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.hybster.config import BatchConfig, ClusterConfig
from repro.obs.critpath import analyze
from repro.obs.probes import ObsPlane

FLUSH_REASONS = {"size", "idle", "drain", "timeout", "dropped"}


def test_queue_spans_close_exactly_once_across_leader_crash():
    config = ClusterConfig(f=1, request_timeout=1.5, progress_timeout=0.5)
    cluster = build_troxy(
        seed=74, app_factory=KvStore, config=config,
        batching=BatchConfig(max_batch=4, pipeline_depth=4),
    )
    plane = ObsPlane().attach(cluster)
    completed = {}

    def driver(index, client):
        for n in range(3):
            outcome = yield from client.invoke(
                put(f"key-{index}", f"v{n}".encode())
            )
            assert outcome.result.content == b"stored"
        outcome = yield from client.invoke(get(f"key-{index}"))
        completed[index] = outcome.result.content

    clients = plane.wrap_clients([
        cluster.new_client(contact_index=1 + (i % 2), request_timeout=1.5)
        for i in range(6)
    ])
    for index, client in enumerate(clients):
        cluster.env.process(driver(index, client))

    def killer():
        yield cluster.env.timeout(0.0006)  # mid-burst, pipeline loaded
        cluster.hosts[0].stop()  # view-0 leader and its Troxy

    cluster.env.process(killer())
    cluster.env.run(until=180.0)
    plane.finalize()

    assert completed == {i: b"v2" for i in range(6)}
    assert plane.spans.open_count == 0

    queue_spans = [s for s in plane.spans.spans if s.name == "hybster.queue"]
    assert queue_spans, "batching leader recorded no queue spans"
    for span in queue_spans:
        assert span.end is not None and span.end >= span.start
        if span.attrs.get("unfinished"):
            continue  # in flight on the crashed leader at the horizon
        assert span.attrs.get("reason") in FLUSH_REASONS, span.attrs

    # The new leader re-ordered what died with the old pipeline, so
    # queue activity exists on both leaders' nodes.
    nodes = {span.node for span in queue_spans}
    assert len(nodes) >= 2, nodes

    # Attribution still accounts for every completed request in full.
    analysis = analyze(plane.spans)
    assert analysis.requests
    assert analysis.min_coverage() >= 0.95
