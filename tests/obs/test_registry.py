"""Unit tests for the metrics registry."""

import math

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, Registry, RegistryError


def test_counter_inc_and_value():
    reg = Registry()
    c = reg.counter("ops_total", "Operations", node="r0")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.value("ops_total", node="r0") == 5


def test_counter_rejects_negative_increment():
    c = Registry().counter("ops_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_get_or_create_same_instrument():
    reg = Registry()
    a = reg.counter("ops_total", node="r0")
    b = reg.counter("ops_total", node="r0")
    assert a is b
    assert reg.counter("ops_total", node="r1") is not a


def test_gauge_set_inc_dec():
    g = Registry().gauge("depth")
    g.set(10.0)
    g.inc(2.5)
    g.dec()
    assert g.value == pytest.approx(11.5)


def test_histogram_buckets_and_cumulative():
    h = Registry().histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(v)
    cum = dict(h.cumulative())
    assert cum[0.01] == 1
    assert cum[0.1] == 3
    assert cum[1.0] == 4
    assert cum[math.inf] == 5
    assert h.count == 5
    assert h.sum == pytest.approx(5.605)


def test_histogram_default_buckets():
    h = Registry().histogram("lat")
    assert tuple(h.buckets) == tuple(DEFAULT_BUCKETS)


def test_kind_conflict_rejected():
    reg = Registry()
    reg.counter("x_total")
    with pytest.raises(RegistryError):
        reg.gauge("x_total")


def test_bucket_conflict_rejected():
    reg = Registry()
    reg.histogram("lat", buckets=(1.0, 2.0))
    with pytest.raises(RegistryError):
        reg.histogram("lat", buckets=(1.0, 3.0))


def test_invalid_names_rejected():
    reg = Registry()
    with pytest.raises(RegistryError):
        reg.counter("bad-name")
    with pytest.raises(RegistryError):
        reg.counter("ok_total", **{"bad-label": "v"})


def test_total_sums_over_matching_labels():
    reg = Registry()
    reg.counter("reads_total", node="r0", outcome="hit").inc(3)
    reg.counter("reads_total", node="r1", outcome="hit").inc(2)
    reg.counter("reads_total", node="r0", outcome="miss").inc(7)
    assert reg.total("reads_total") == 12
    assert reg.total("reads_total", outcome="hit") == 5
    assert reg.total("reads_total", node="r0") == 10
    assert reg.total("missing_total") == 0


def test_value_raises_on_histogram():
    reg = Registry()
    reg.histogram("lat").observe(1.0)
    with pytest.raises(RegistryError):
        reg.value("lat")


def test_families_sorted_by_name():
    reg = Registry()
    reg.counter("zz_total")
    reg.gauge("aa")
    assert [f.name for f in reg.families()] == ["aa", "zz_total"]
