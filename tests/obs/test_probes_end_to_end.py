"""End-to-end: instrumented runs are complete, consistent, and inert.

These tests drive the real cluster + workload with an attached
``ObsPlane`` and assert the ISSUE acceptance criteria directly:

- two same-seed runs export byte-identical reports;
- per-request span trees are complete (client → host → ecall → order →
  execute → vote / cache);
- live protocol counters agree with the authoritative stats structs
  mirrored at snapshot time;
- attaching the plane perturbs nothing — the unobserved run measures
  the exact same Summary.
"""

import random

import pytest

from repro.bench.experiments import _run_system, mixed_source
from repro.obs.__main__ import run_workload
from repro.obs.export import REPORT_FILES, write_report


@pytest.fixture(scope="module")
def run():
    return run_workload(seed=7, n_clients=2, warmup=0.02, duration=0.06)


def test_same_seed_runs_export_identically(tmp_path):
    paths = []
    for i in (1, 2):
        plane, _ = run_workload(seed=11, n_clients=2, warmup=0.01, duration=0.03)
        paths.append(
            write_report(tmp_path / f"run{i}", plane.registry, plane.spans.spans)
        )
    for fmt in REPORT_FILES:
        a = paths[0][fmt].read_bytes()
        b = paths[1][fmt].read_bytes()
        assert a == b, f"{fmt} export differs between same-seed runs"


def test_all_spans_closed_after_finalize(run):
    plane, _ = run
    assert plane.spans.open_count == 0


def test_every_trace_roots_at_protocol_entry(run):
    plane, _ = run
    rec = plane.spans
    assert rec.trace_ids(), "no traces recorded"
    for tid in rec.trace_ids():
        # Requests whose client.invoke closed before a late replica
        # reply arrives legitimately grow extra host-side roots; every
        # root must still be a protocol entry point.
        for root in rec.roots(tid):
            assert root.name in {"client.invoke", "troxy.host"}, (
                f"trace {tid} rooted at {root.name}"
            )


def test_full_request_chain_recorded(run):
    plane, _ = run
    rec = plane.spans
    ordered_chain = {
        "client.invoke", "troxy.host", "hybster.order",
        "hybster.execute", "troxy.vote",
    }
    fast_chain = {"client.invoke", "troxy.host", "troxy.cache", "troxy.fast_read"}
    names_by_trace = [rec.phase_names(t) for t in rec.trace_ids()]
    assert any(ordered_chain <= names for names in names_by_trace), (
        "no trace contains the full ordered-write chain"
    )
    assert any(fast_chain <= names for names in names_by_trace), (
        "no trace contains the fast-read chain"
    )
    # Every ecall span sits inside some request tree.
    full = next(n for n in names_by_trace if ordered_chain <= n)
    assert any(name.startswith("enclave.ecall:") for name in full)


def test_counters_match_authoritative_stats(run):
    plane, _ = run
    reg = plane.registry
    # Live ecall-transition counters vs EnclaveStats mirrored at snapshot.
    assert reg.total("ecall_transitions_total") == reg.total("enclave_ecalls")
    # Live conflict counters vs MonitorStats.
    assert reg.total("fast_read_results_total", outcome="conflict") == reg.total(
        "monitor_conflicts"
    )
    assert reg.total("fast_read_results_total", outcome="hit") == reg.total(
        "monitor_fast_successes"
    )
    # ...and vs TroxyStats.
    assert reg.total("fast_read_results_total", outcome="hit") == reg.total(
        "troxy_fast_read_hits"
    )
    assert reg.total("votes_total", outcome="decided") == reg.total(
        "troxy_replies_voted"
    )


def test_network_tap_matches_network_totals(run):
    plane, _ = run
    reg = plane.registry
    assert reg.total("net_messages_total") == reg.value("net_messages_sent")
    assert reg.total("net_bytes_total") == reg.value("net_bytes_sent")


def test_observation_does_not_perturb_the_run():
    def measure(obs):
        source = mixed_source(0.1, random.Random(3), key_space=4)
        _, summary = _run_system(
            "etroxy", source, reply_size=64, n_clients=2,
            warmup=0.01, duration=0.04, seed=3, obs=obs,
        )
        return summary

    from repro.obs.probes import ObsPlane

    baseline = measure(None)
    observed = measure(ObsPlane())
    assert observed == baseline
