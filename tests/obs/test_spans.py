"""Unit tests for the hierarchical sim-time span recorder."""

import pytest

from repro.obs.spans import SpanRecorder, render_tree, trace_key


class _Msg:
    def __init__(self, client_id, request_id):
        self.client_id = client_id
        self.request_id = request_id


def test_trace_key_format():
    assert trace_key(_Msg("client-3", 17)) == "client-3#17"


def test_nested_spans_parent_to_innermost_open():
    rec = SpanRecorder()
    outer = rec.begin("client.invoke", 0.0, trace_id="c#1", node="client-0")
    inner = rec.begin("troxy.host", 0.1, trace_id="c#1", node="client-0")
    assert inner.parent_id == outer.span_id
    rec.end(inner, 0.2)
    rec.end(outer, 0.3)
    assert outer.duration == pytest.approx(0.3)
    assert not outer.open


def test_node_aware_parenting_prefers_same_node():
    rec = SpanRecorder()
    rec.begin("client.invoke", 0.0, trace_id="c#1", node="client-0")
    r0 = rec.begin("hybster.execute", 0.1, trace_id="c#1", node="replica-0")
    r1 = rec.begin("hybster.execute", 0.1, trace_id="c#1", node="replica-1")
    # Each replica's ecall nests under *its own* execute span, not under
    # whichever execute happens to sit on top of the shared trace stack.
    e0 = rec.begin("enclave.ecall:x", 0.15, trace_id="c#1", node="replica-0")
    e1 = rec.begin("enclave.ecall:x", 0.15, trace_id="c#1", node="replica-1")
    assert e0.parent_id == r0.span_id
    assert e1.parent_id == r1.span_id


def test_explicit_parent_override_and_root():
    rec = SpanRecorder()
    a = rec.begin("a", 0.0, trace_id="t", node="n")
    b = rec.begin("b", 0.1, trace_id="t", node="m", parent=a)
    root = rec.begin("c", 0.1, trace_id="t", node="n", parent=None)
    assert b.parent_id == a.span_id
    assert root.parent_id is None


def test_event_is_closed_instantly():
    rec = SpanRecorder()
    ev = rec.event("hybster.commit", 1.5, trace_id="t", node="n", seq=4)
    assert ev.kind == "event"
    assert ev.end == 1.5
    assert ev.attrs["seq"] == 4
    assert not ev.open


def test_end_twice_and_time_travel_rejected():
    rec = SpanRecorder()
    span = rec.begin("a", 1.0, trace_id="t", node="n")
    with pytest.raises(ValueError):
        rec.end(span, 0.5)
    rec.end(span, 2.0)
    with pytest.raises(ValueError):
        rec.end(span, 3.0)


def test_finish_closes_open_spans():
    rec = SpanRecorder()
    rec.begin("a", 0.0, trace_id="t", node="n")
    done = rec.begin("b", 0.1, trace_id="t", node="n")
    rec.end(done, 0.2)
    assert rec.finish(1.0) == 1
    assert rec.open_count == 0
    forced = rec.trace("t")[0]
    assert forced.end == 1.0
    assert forced.attrs["unfinished"] is True


def test_tree_renders_full_hierarchy():
    rec = SpanRecorder()
    a = rec.begin("client.invoke", 0.0, trace_id="t", node="c0")
    rec.begin("troxy.host", 0.1, trace_id="t", node="r0")
    rec.finish(0.5)
    rows = rec.tree("t")
    assert [(d, s.name) for d, s in rows] == [
        (0, "client.invoke"), (1, "troxy.host"),
    ]
    text = render_tree(rec, "t")
    assert "client.invoke" in text and "troxy.host" in text
    assert rec.roots("t")[0] is a


def test_trace_queries():
    rec = SpanRecorder()
    rec.begin("a", 0.0, trace_id="t1", node="n")
    rec.begin("b", 0.1, trace_id="t2", node="n")
    rec.event("c", 0.2, trace_id="t1", node="n")
    rec.finish(1.0)
    assert rec.trace_ids() == ["t1", "t2"]
    assert rec.phase_names("t1") == {"a", "c"}
    assert len(rec.trace("t1")) == 2
    assert len(rec) == 3
