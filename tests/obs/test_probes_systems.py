"""ObsPlane across deployment shapes: bl, ctroxy — attach, detach, bytes.

The etroxy system is covered end-to-end in
``test_probes_end_to_end.py``; here the plane attaches to the baseline
(no Troxy hosts — the host/enclave sections of ``attach`` must skip
cleanly) and the co-located Troxy, detach restores the exact
pre-attach hook state, and same-seed exports stay byte-identical per
system.
"""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline, build_troxy
from repro.obs.__main__ import run_workload
from repro.obs.export import REPORT_FILES, write_report
from repro.obs.probes import ObsPlane


def _build(system, seed):
    if system == "bl":
        return build_baseline(seed=seed, app_factory=KvStore)
    return build_troxy(
        seed=seed, app_factory=KvStore,
        boundary="jni" if system == "ctroxy" else "sgx",
    )


@pytest.mark.parametrize("system", ["bl", "ctroxy"])
def test_attach_records_and_exports_deterministically(system, tmp_path):
    paths = []
    for i in (1, 2):
        plane, summary = run_workload(
            system=system, seed=13, n_clients=2, warmup=0.01, duration=0.04
        )
        assert summary.count > 0
        assert len(plane.spans) > 0
        assert plane.registry.total("client_invocations_total") > 0
        paths.append(
            write_report(
                tmp_path / f"{system}-{i}", plane.registry, plane.spans.spans
            )
        )
    for fmt in REPORT_FILES:
        assert paths[0][fmt].read_bytes() == paths[1][fmt].read_bytes(), (
            f"{system}: {fmt} differs between same-seed runs"
        )


@pytest.mark.parametrize("system", ["bl", "ctroxy", "etroxy"])
def test_detach_restores_hook_state(system):
    cluster = _build(system, seed=5)
    plane = ObsPlane().attach(cluster)
    for replica in getattr(cluster, "replicas", ()):
        assert replica.obs is plane
    for host in getattr(cluster, "hosts", ()):
        assert host.obs is plane
        assert host.core.monitor.switch_hooks

    plane.detach()
    assert plane.cluster is None
    for replica in getattr(cluster, "replicas", ()):
        assert replica.obs is None
        assert replica.boundary.obs is None
    for host in getattr(cluster, "hosts", ()):
        assert host.obs is None
        assert host.core.obs is None
        assert host.enclave.obs is None
        assert not host.core.monitor.switch_hooks
    net = getattr(cluster, "net", None)
    if net is not None:
        assert plane._net_tap not in getattr(net, "_send_filters", ())


def test_detached_plane_records_nothing_new():
    cluster = _build("ctroxy", seed=9)
    plane = ObsPlane().attach(cluster)
    client = plane.wrap_clients([cluster.new_client()])[0]

    def driver():
        yield from client.invoke(put("k", b"v"))
        yield from client.invoke(get("k"))

    cluster.env.process(driver(), name="obs-test:driver")
    cluster.env.run(until=0.5)
    recorded = len(plane.spans)
    assert recorded > 0

    plane.detach()
    bare = cluster.new_client()

    def driver2():
        yield from bare.invoke(get("k"))

    cluster.env.process(driver2(), name="obs-test:driver2")
    cluster.env.run(until=1.0)
    assert len(plane.spans) == recorded


def test_reattach_after_detach():
    cluster = _build("bl", seed=2)
    plane = ObsPlane().attach(cluster)
    plane.detach()
    plane.attach(cluster)
    for replica in cluster.replicas:
        assert replica.obs is plane
    plane.detach()
