"""Critical-path attribution: unit sweep semantics + live-run acceptance.

Unit tests drive :func:`attribute_trace` over handcrafted span trees
(priority nesting, gap-as-wait, trailing reply delivery); end-to-end
tests pin the ISSUE acceptance criteria on real instrumented runs:
every request's attributed segments sum to >= 95 % of its measured
end-to-end latency, the bottleneck report is byte-identical across
same-seed runs, and the batching / sharding probe phases show up where
the workload exercises them.
"""

import json

import pytest

from repro.obs.critpath import (
    CritpathAnalysis,
    analyze,
    attribute_trace,
    highlighted_chrome_trace,
    render_report,
)
from repro.obs.critpath.__main__ import main as critpath_main
from repro.obs.spans import SpanRecorder
from repro.obs.__main__ import run_workload


def _closed(rec, name, start, end, trace="c1#1", node="replica-0", **kw):
    span = rec.begin(name, start, trace_id=trace, node=node, **kw)
    rec.end(span, end)
    return span


# -- unit: interval sweep ----------------------------------------------------


def test_nested_spans_attributed_to_innermost_phase():
    rec = SpanRecorder()
    root = _closed(rec, "client.invoke", 0.0, 1.0, parent=None)
    _closed(rec, "hybster.order", 0.2, 0.8, parent=root)
    # Certification nested inside ordering owns its interval (priority).
    _closed(rec, "enclave.ecall:certify_order", 0.4, 0.5, parent=root)
    attr = attribute_trace(rec.spans, "c1#1")
    assert attr.coverage == pytest.approx(1.0)
    assert attr.slices[("ordering", "service")] == pytest.approx(0.5)
    assert attr.slices[("certification", "service")] == pytest.approx(0.1)
    # Gaps: [0,0.2) waits for ordering, [0.8,1.0) is reply delivery.
    assert attr.slices[("ordering", "wait")] == pytest.approx(0.2)
    assert attr.slices[("reply_delivery", "wait")] == pytest.approx(0.2)


def test_gap_wait_goes_to_the_next_starting_phase():
    rec = SpanRecorder()
    root = _closed(rec, "client.invoke", 0.0, 1.0, parent=None)
    _closed(rec, "troxy.host", 0.0, 0.3, parent=root)
    _closed(rec, "troxy.vote", 0.6, 0.9, parent=root)
    attr = attribute_trace(rec.spans, "c1#1")
    # [0.3,0.6) is the fan-in before the vote: voting wait.
    assert attr.slices[("voting", "wait")] == pytest.approx(0.3)
    assert attr.slices[("troxy_accept", "service")] == pytest.approx(0.3)
    assert attr.slices[("voting", "service")] == pytest.approx(0.3)
    assert attr.slices[("reply_delivery", "wait")] == pytest.approx(0.1)


def test_queue_and_forward_spans_map_to_wait_phases():
    rec = SpanRecorder()
    root = _closed(rec, "client.invoke", 0.0, 1.0, parent=None)
    _closed(rec, "shard.forward", 0.0, 0.2, parent=root)
    _closed(rec, "hybster.queue", 0.2, 0.6, parent=root)
    _closed(rec, "hybster.order", 0.6, 1.0, parent=root)
    attr = attribute_trace(rec.spans, "c1#1")
    assert attr.slices[("forward_hop", "wait")] == pytest.approx(0.2)
    assert attr.slices[("batch_queue", "wait")] == pytest.approx(0.4)
    assert attr.forwarded


def test_critical_span_ids_are_the_interval_owners():
    rec = SpanRecorder()
    root = _closed(rec, "client.invoke", 0.0, 1.0, parent=None)
    order = _closed(rec, "hybster.order", 0.0, 1.0, parent=root)
    # Fully shadowed by the higher-priority execute span: not critical.
    execute = _closed(rec, "hybster.execute", 0.0, 1.0, parent=root)
    attr = attribute_trace(rec.spans, "c1#1")
    assert execute.span_id in attr.critical_span_ids
    assert order.span_id not in attr.critical_span_ids


def test_unfinished_or_missing_roots_are_skipped():
    rec = SpanRecorder()
    rec.begin("client.invoke", 0.0, trace_id="c1#1", node="n", parent=None)
    rec.finish(1.0)  # root closed as unfinished
    assert attribute_trace(rec.spans, "c1#1") is None
    assert attribute_trace([], "c9#9") is None


def test_analysis_merge_matches_union():
    rec = SpanRecorder()
    for i, (a, b) in enumerate([(0.0, 1.0), (2.0, 2.5), (3.0, 3.7)]):
        root = _closed(rec, "client.invoke", a, b, trace=f"c1#{i}", parent=None)
        _closed(rec, "hybster.execute", a, (a + b) / 2,
                trace=f"c1#{i}", parent=root)
    whole = analyze(rec.spans)
    left = analyze(rec.spans, trace_ids=["c1#0"])
    right = analyze(rec.spans, trace_ids=["c1#1", "c1#2"])
    merged = CritpathAnalysis().merge(left).merge(right)
    assert merged.totals == whole.totals
    assert merged.counts == whole.counts
    assert merged.e2e.quantile(0.5) == pytest.approx(whole.e2e.quantile(0.5))
    assert len(merged.requests) == len(whole.requests) == 3


# -- end-to-end: instrumented runs ------------------------------------------


@pytest.fixture(scope="module")
def fig5_run():
    plane, _ = run_workload(
        seed=7, n_clients=2, warmup=0.02, duration=0.06, write_ratio=1.0
    )
    return plane, analyze(plane.spans)


def test_every_request_covered_at_least_95_percent(fig5_run):
    _, analysis = fig5_run
    assert analysis.requests, "nothing attributed"
    # The sweep partitions [T0,T1] exactly, so this holds with margin.
    assert analysis.min_coverage() >= 0.95
    for request in analysis.requests:
        assert request.attributed == pytest.approx(request.e2e, rel=1e-9)


def test_report_is_deterministic_across_same_seed_runs():
    reports = []
    for _ in range(2):
        plane, _ = run_workload(seed=11, n_clients=2, warmup=0.01,
                                duration=0.03)
        reports.append(render_report(analyze(plane.spans), "det"))
    assert reports[0] == reports[1]
    assert "accounted: 100.0%" in reports[0]


def test_batching_run_shows_queue_phase():
    plane, _ = run_workload(
        seed=5, n_clients=8, warmup=0.02, duration=0.06,
        write_ratio=1.0, batching="adaptive",
    )
    analysis = analyze(plane.spans)
    assert ("batch_queue", "wait") in analysis.totals
    assert analysis.profiles[("batch_queue", "wait")].count > 0


def test_sharded_run_shows_forward_phase():
    from repro.bench.critpath import attributed_sharded_run

    analysis, _, _, _ = attributed_sharded_run(
        shards=2, n_clients=6, warmup=0.02, duration=0.06
    )
    assert ("forward_hop", "wait") in analysis.totals
    forwarded = [r for r in analysis.requests if r.forwarded]
    assert forwarded, "no request took the cross-group hop"
    assert analysis.min_coverage() >= 0.95


def test_highlighted_chrome_trace_marks_critical_spans(fig5_run):
    plane, analysis = fig5_run
    trace = highlighted_chrome_trace(plane.spans.spans, analysis)
    marked = [e for e in trace["traceEvents"]
              if e.get("args", {}).get("critical")]
    assert marked, "no critical-path spans highlighted"
    for event in marked:
        assert event["cat"].endswith(",critical")
        assert event["args"]["span_id"] in analysis.critical_span_ids()
    unmarked = [e for e in trace["traceEvents"]
                if not e.get("args", {}).get("critical")]
    assert unmarked, "highlighting must be selective"
    json.dumps(trace)  # still JSON-serialisable


def test_cli_writes_byte_identical_outputs(tmp_path):
    argv = ["--seed", "13", "--clients", "2", "--warmup", "0.01",
            "--duration", "0.03"]
    for i in (1, 2):
        assert critpath_main(argv + ["--out", str(tmp_path / f"r{i}")]) == 0
    for name in ("critpath.txt", "critpath.json", "trace.json"):
        a = (tmp_path / "r1" / name).read_bytes()
        b = (tmp_path / "r2" / name).read_bytes()
        assert a == b, f"{name} differs between same-seed runs"
    payload = json.loads((tmp_path / "r1" / "critpath.json").read_text())
    assert payload["tool"] == "repro.obs.critpath"
    assert payload["min_coverage"] >= 0.95
