"""Streaming quantile sketch + Quantile registry instrument."""

import math
import random

import pytest

from repro.obs.export import metrics_jsonl, prometheus_text
from repro.obs.quantiles import QuantileSketch
from repro.obs.registry import Registry, RegistryError


def test_empty_sketch():
    sk = QuantileSketch()
    assert sk.count == 0
    assert sk.sum == 0.0
    assert math.isnan(sk.quantile(0.5))


def test_small_stream_is_exact():
    sk = QuantileSketch()
    for v in (5.0, 1.0, 3.0, 2.0, 4.0):
        sk.observe(v)
    assert sk.count == 5
    assert sk.sum == 15.0
    assert sk.quantile(0.0) == 1.0
    assert sk.quantile(1.0) == 5.0
    assert sk.quantile(0.5) == 3.0


def test_rejects_nan():
    sk = QuantileSketch()
    with pytest.raises(ValueError):
        sk.observe(math.nan)


def test_quantile_argument_validation():
    sk = QuantileSketch()
    sk.observe(1.0)
    with pytest.raises(ValueError):
        sk.quantile(-0.1)
    with pytest.raises(ValueError):
        sk.quantile(1.1)


def test_large_stream_accuracy_and_bounded_size():
    rng = random.Random(7)
    values = [rng.random() for _ in range(20000)]
    sk = QuantileSketch(compression=64)
    for v in values:
        sk.observe(v)
    values.sort()
    for q in (0.01, 0.25, 0.5, 0.9, 0.99):
        exact = values[min(int(q * len(values)), len(values) - 1)]
        assert sk.quantile(q) == pytest.approx(exact, abs=0.02)
    # Centroid count stays O(compression), not O(n): ~5x compression
    # at steady state for any stream length.
    assert sk.centroid_count() < 8 * sk.compression
    # Extremes are exact.
    assert sk.quantile(0.0) == values[0]
    assert sk.quantile(1.0) == values[-1]


def test_merge_matches_single_sketch():
    rng = random.Random(11)
    a, b, whole = QuantileSketch(), QuantileSketch(), QuantileSketch()
    for i in range(5000):
        v = rng.gauss(0.0, 1.0)
        (a if i % 2 else b).observe(v)
        whole.observe(v)
    merged = QuantileSketch()
    merged.merge(a)
    merged.merge(b)
    assert merged.count == whole.count
    assert merged.sum == pytest.approx(whole.sum)
    for q in (0.1, 0.5, 0.9):
        assert merged.quantile(q) == pytest.approx(whole.quantile(q), abs=0.1)
    # Merging never mutates the source.
    assert a.count == 2500


def test_merge_empty_is_noop():
    sk = QuantileSketch()
    sk.observe(2.0)
    sk.merge(QuantileSketch())
    assert sk.count == 1
    empty = QuantileSketch()
    empty.merge(sk)
    assert empty.quantile(0.5) == 2.0


def test_determinism_same_stream_same_bytes():
    def build():
        rng = random.Random(3)
        sk = QuantileSketch(compression=32)
        for _ in range(3000):
            sk.observe(rng.expovariate(1.0))
        return [sk.quantile(q) for q in (0.5, 0.9, 0.99)]

    assert build() == build()


# -- Quantile registry instrument ---------------------------------------------


def test_registry_quantile_instrument():
    reg = Registry()
    q = reg.quantile("lat", "Latency quantiles", node="r0")
    for v in (1.0, 2.0, 3.0, 4.0):
        q.observe(v)
    assert q.count == 4
    assert q.sum == 10.0
    assert q.value(0.5) == 2.5
    assert reg.quantile("lat", node="r0") is q
    assert reg.total("lat") == 4


def test_registry_quantile_validation():
    reg = Registry()
    with pytest.raises(RegistryError):
        reg.quantile("bad", quantiles=())
    with pytest.raises(RegistryError):
        reg.quantile("bad2", quantiles=(0.5, 1.5))
    reg.quantile("ok", quantiles=(0.5, 0.9))
    with pytest.raises(RegistryError):
        reg.quantile("ok", quantiles=(0.5,))  # family-level mismatch


def test_registry_quantile_value_raises():
    reg = Registry()
    inst = reg.quantile("lat2")
    inst.observe(1.0)
    with pytest.raises(RegistryError):
        reg.value("lat2")


def test_prometheus_summary_lines():
    reg = Registry()
    q = reg.quantile("rpc_latency", "RPC latency", quantiles=(0.5, 0.99), node="r0")
    for v in (0.01, 0.02, 0.03, 0.04):
        q.observe(v)
    text = prometheus_text(reg)
    assert "# TYPE rpc_latency summary" in text
    assert 'rpc_latency_quantile{node="r0",q="0.5"} 0.025' in text
    assert 'rpc_latency_quantile{node="r0",q="0.99"} 0.04' in text
    assert 'rpc_latency_sum{node="r0"} 0.1' in text
    assert 'rpc_latency_count{node="r0"} 4' in text


def test_empty_quantile_renders_nan():
    reg = Registry()
    reg.quantile("idle", quantiles=(0.5,))
    text = prometheus_text(reg)
    assert 'idle_quantile{q="0.5"} NaN' in text
    # JSONL stays parseable: NaN is stringified, not bare.
    import json

    for line in metrics_jsonl(reg, []).splitlines():
        record = json.loads(line)
    assert record["quantiles"][0]["value"] == "NaN"
