"""End-to-end: HealthPlane over real chaos scenarios + the harness.

Covers the acceptance criteria directly: fault-free runs emit zero
health events and byte-identical reports; catalogued faults are
diagnosed with the expected kind within the run; attaching the health
plane perturbs nothing.
"""

import json

import pytest

from repro.faults.campaign import run_scenario
from repro.faults.schedule import get_scenario, scenario_names
from repro.obs.health import EXPECTED, HealthPlane, run_detection
from repro.obs.health.__main__ import main as health_main
from repro.obs.health.plane import write_health_report


def _judged(name, seed=1, **kw):
    plane = HealthPlane(**kw)
    report = run_scenario(
        get_scenario(name), seed, registry=plane.registry, obs=plane
    )
    plane.finalize()
    return plane, report


def test_expected_covers_whole_catalogue():
    assert sorted(EXPECTED) == sorted(scenario_names())


def test_healthy_control_is_quiet_and_deterministic():
    reports = []
    for _ in range(2):
        plane, _ = _judged("healthy_control")
        assert plane.events == []
        assert plane.flight.bundles == []
        assert plane.windows_evaluated > 1
        reports.append(json.dumps(plane.health_report(), sort_keys=True))
    assert reports[0] == reports[1]


def test_health_plane_does_not_perturb_the_run():
    bare = run_scenario(get_scenario("write_contention_attack"), 1)
    _, observed = _judged("write_contention_attack")
    assert json.dumps(bare, sort_keys=True) == json.dumps(
        observed, sort_keys=True
    )


def test_enclave_reboot_diagnosed_with_evidence():
    plane, report = _judged("enclave_reboot_rollback")
    reboots = [e for e in plane.events if e.kind == "enclave_reboot"]
    assert reboots, [e.kind for e in plane.events]
    event = reboots[0]
    injected = min(i["t"] for i in report["injections"])
    assert event.t >= injected
    assert event.severity == "critical"
    assert event.evidence.span_ids, "no forensic span evidence attached"
    assert plane.flight.bundles
    # Events also land in the registry as counters.
    assert plane.registry.total("health_events_total", kind="enclave_reboot") >= 1


def test_detection_verdict_structure():
    verdict = run_detection("troxy_crash_failover", 1)
    verdict.pop("plane")
    assert verdict["ok"]
    assert verdict["detected_kind"] in EXPECTED["troxy_crash_failover"]
    assert verdict["detection_latency"] >= 0
    assert verdict["false_positives"] == 0
    assert verdict["invariants_ok"]
    json.dumps(verdict, sort_keys=True)  # JSON-serialisable


def test_write_health_report_layout(tmp_path):
    plane, _ = _judged("enclave_reboot_rollback")
    written = write_health_report(tmp_path / "out", plane)
    health = json.loads(written["health"].read_text())
    assert health["tool"] == "repro.obs.health"
    assert health["event_count"] == len(plane.events)
    assert (tmp_path / "out" / "bundles").is_dir()


def test_cli_end_to_end_byte_identical(tmp_path):
    argv = ["--scenarios", "healthy_control,enclave_reboot_rollback"]
    outs = []
    for i in (1, 2):
        out = tmp_path / f"run{i}"
        assert health_main(argv + ["--out", str(out)]) == 0
        outs.append(out)
    files1 = sorted(p.relative_to(outs[0]) for p in outs[0].rglob("*") if p.is_file())
    files2 = sorted(p.relative_to(outs[1]) for p in outs[1].rglob("*") if p.is_file())
    assert files1 == files2 and files1
    for rel in files1:
        assert (outs[0] / rel).read_bytes() == (outs[1] / rel).read_bytes(), rel


def test_cli_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        health_main(["--scenarios", "nope"])


def test_queue_saturation_diagnosed_on_starved_pipeline():
    # Depth-1 pipeline, tiny batches, long batch_wait, write-heavy load:
    # arrivals outrun the drain rate, so leader queue waits dwarf the
    # ordering service time and the wait/service detector must fire.
    from repro.hybster.config import BatchConfig
    from repro.obs.__main__ import run_workload

    cfg = BatchConfig(max_batch=2, batch_wait=0.004, pipeline_depth=1)
    plane = HealthPlane(window=0.05)
    plane, _ = run_workload(
        n_clients=24, write_ratio=1.0, duration=0.2, batching=cfg,
        plane=plane,
    )
    sat = [e for e in plane.events if e.kind == "queue_saturation"]
    assert sat, [e.kind for e in plane.events]
    assert sat[0].node == "replica-0"  # the leader's queue, nobody else's
    assert sat[0].detail["wait_service_ratio"] >= 40.0


def test_final_partial_window_is_evaluated():
    # A window larger than the horizon still gets judged once at finalize.
    plane, _ = _judged("healthy_control", window=1e6)
    assert plane.windows_evaluated == 1
