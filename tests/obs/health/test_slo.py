"""SLO spec validation + tracker evaluation over synthetic windows."""

import pytest

from repro.obs.health.slo import SloSpec, SloTracker, default_slos
from repro.obs.health.window import WindowSnapshot


def _win(index=0):
    return WindowSnapshot(start=index * 0.25, end=(index + 1) * 0.25, index=index)


def test_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="nope", limit=1.0)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="latency_quantile", limit=1.0, q=1.5)


def test_latency_quantile_violation():
    spec = SloSpec(
        name="p99", kind="latency_quantile", limit=0.010, q=0.99,
        op_class="read", min_samples=2,
    )
    tracker = SloTracker(spec)
    win = _win()
    for v in (0.001, 0.002, 0.050):
        win.observe_latency("read", v)
    finding = tracker.evaluate(win)
    assert finding is not None
    assert finding.kind == "slo_violation"
    assert finding.detail["slo"] == "p99"
    assert finding.detail["value"] > 0.010
    assert tracker.windows_violated == 1
    assert not tracker.summary()["compliant"]


def test_latency_quantile_respects_min_samples():
    spec = SloSpec(
        name="p99", kind="latency_quantile", limit=0.010, min_samples=4,
        op_class="read",
    )
    tracker = SloTracker(spec)
    win = _win()
    win.observe_latency("read", 0.5)  # one terrible sample, below the floor
    assert tracker.evaluate(win) is None
    assert tracker.windows_evaluated == 0


def test_slo_edge_trigger_and_recovery():
    spec = SloSpec(
        name="p99", kind="latency_quantile", limit=0.010, min_samples=1,
        op_class="read",
    )
    tracker = SloTracker(spec)
    bad = _win()
    bad.observe_latency("read", 0.1)
    assert tracker.evaluate(bad) is not None
    bad2 = _win(1)
    bad2.observe_latency("read", 0.2)
    assert tracker.evaluate(bad2) is None  # still breached: no re-fire
    good = _win(2)
    good.observe_latency("read", 0.001)
    assert tracker.evaluate(good) is None
    bad3 = _win(3)
    bad3.observe_latency("read", 0.3)
    assert tracker.evaluate(bad3) is not None  # re-armed after recovery
    assert tracker.windows_violated == 3


def test_hit_rate_floor():
    spec = SloSpec(name="hr", kind="hit_rate_floor", limit=0.5, min_samples=8)
    tracker = SloTracker(spec)
    win = _win()
    node = win.node("replica-0")
    node.fast_hits = 2
    node.fast_conflicts = 6
    node.fast_timeouts = 2
    finding = tracker.evaluate(win)
    assert finding is not None
    assert finding.detail["value"] == pytest.approx(0.2)
    # Too few attempts -> no evaluation.
    small = _win(1)
    small.node("replica-0").fast_conflicts = 3
    assert tracker.evaluate(small) is None


def test_progress_slo():
    spec = SloSpec(name="prog", kind="progress", limit=1.0, severity="critical")
    tracker = SloTracker(spec)
    # Nothing in flight, nothing completed: vacuously fine.
    assert tracker.evaluate(_win()) is None
    # Work in flight but zero completions: violation.
    stuck = _win(1)
    stuck.open_invokes = 3
    finding = tracker.evaluate(stuck)
    assert finding is not None
    assert finding.severity == "critical"
    # Completions present: compliant.
    moving = _win(2)
    moving.open_invokes = 3
    moving.completed = 4
    assert tracker.evaluate(moving) is None


def test_total_sketch_accumulates_across_windows():
    spec = SloSpec(
        name="p99", kind="latency_quantile", limit=10.0, min_samples=1,
        op_class="read",
    )
    tracker = SloTracker(spec)
    for i in range(3):
        win = _win(i)
        win.observe_latency("read", float(i + 1))
        tracker.evaluate(win)
    assert tracker.total_sketch.count == 3
    assert tracker.total_sketch.quantile(1.0) == 3.0


def test_default_slos_shape():
    slos = default_slos()
    names = [s.name for s in slos]
    assert names == [
        "read_latency_p99", "write_latency_p99", "fast_read_hit_rate",
        "progress",
    ]
    assert all(isinstance(s, SloSpec) for s in slos)
