"""Flight recorder: rings, bundles, deterministic dumps."""

import json

from repro.obs.health.events import Evidence, HealthEvent
from repro.obs.health.recorder import FlightRecorder
from repro.obs.spans import SpanRecorder


def _spans(n, node="r0"):
    rec = SpanRecorder()
    spans = []
    for i in range(n):
        span = rec.begin("troxy.host", i * 0.001, node=node)
        rec.end(span, i * 0.001 + 0.0005)
        spans.append(span)
    return spans


def _event(kind="replica_divergence", t=0.25, node="r0"):
    return HealthEvent(
        kind=kind, t=t, node=node, severity="critical",
        detail={"executes": 0}, evidence=Evidence(metrics=(), span_ids=(1,)),
        window=(0.0, 0.25),
    )


def test_ring_is_bounded_per_node():
    fr = FlightRecorder(capacity=4)
    for span in _spans(10):
        fr.record(span)
    assert fr.recorded_spans == 10
    bundle = fr.capture(0.25, [_event()])
    assert len(bundle["spans"]) == 4  # only the last 4 survive
    ids = [s.span_id for s in bundle["spans"]]
    assert ids == sorted(ids)


def test_recent_span_ids():
    fr = FlightRecorder(capacity=8)
    for span in _spans(6):
        fr.record(span)
    assert len(fr.recent_span_ids("r0", k=3)) == 3
    assert fr.recent_span_ids("missing") == ()


def test_max_bundles_drops_and_counts():
    fr = FlightRecorder(capacity=4, max_bundles=2)
    for span in _spans(3):
        fr.record(span)
    assert fr.capture(0.25, [_event()]) is not None
    assert fr.capture(0.50, [_event(t=0.5)]) is not None
    assert fr.capture(0.75, [_event(t=0.75)]) is None
    assert len(fr.bundles) == 2
    assert fr.dropped_bundles == 1
    assert fr.summary()["dropped_bundles"] == 1


def test_write_bundle_layout_and_determinism(tmp_path):
    def build(out):
        fr = FlightRecorder(capacity=8)
        for span in _spans(5):
            fr.record(span)
        fr.capture(0.25, [_event()])
        return fr.write(out)

    dirs1 = build(tmp_path / "a")
    dirs2 = build(tmp_path / "b")
    assert len(dirs1) == 1
    bundle_dir = dirs1[0]
    assert bundle_dir.name == "bundle-000-replica_divergence"
    names = sorted(p.name for p in bundle_dir.iterdir())
    assert names == ["events.jsonl", "spans.jsonl", "trace.json"]

    events = [json.loads(line) for line in
              (bundle_dir / "events.jsonl").read_text().splitlines()]
    assert events[0]["kind"] == "replica_divergence"
    assert events[0]["evidence"]["span_ids"] == [1]
    spans = [json.loads(line) for line in
             (bundle_dir / "spans.jsonl").read_text().splitlines()]
    assert len(spans) == 5
    trace = json.loads((bundle_dir / "trace.json").read_text())
    assert any(e["ph"] == "X" for e in trace["traceEvents"])

    for p1, p2 in zip(sorted(dirs1[0].iterdir()), sorted(dirs2[0].iterdir())):
        assert p1.read_bytes() == p2.read_bytes()


def test_default_max_bundles_cap_is_twelve():
    fr = FlightRecorder(capacity=2)
    captured = [fr.capture(0.1 * i, [_event(t=0.1 * i)]) for i in range(20)]
    assert sum(bundle is not None for bundle in captured) == 12
    assert all(bundle is None for bundle in captured[12:])
    assert len(fr.bundles) == 12
    assert fr.dropped_bundles == 8


def test_recent_span_ids_order_survives_ring_wraparound():
    fr = FlightRecorder(capacity=4)
    spans = _spans(11)  # ring wraps nearly three times
    for span in spans:
        fr.record(span)
    expected = tuple(s.span_id for s in spans[-4:])
    assert fr.recent_span_ids("r0", k=4) == expected
    # k larger than the ring just returns the whole (ordered) tail.
    assert fr.recent_span_ids("r0", k=99) == expected
    assert fr.recent_span_ids("r0", k=2) == expected[2:]


def test_write_filenames_deterministic_across_runs(tmp_path):
    def build(out):
        fr = FlightRecorder(capacity=4, max_bundles=3)
        for span in _spans(6):
            fr.record(span)
        fr.capture(0.25, [_event(t=0.25)])
        fr.capture(0.50, [_event(kind="stall", t=0.5), _event(kind="stall", t=0.5)])
        return fr.write(out)

    dirs1 = build(tmp_path / "run1")
    dirs2 = build(tmp_path / "run2")
    assert [d.name for d in dirs1] == [d.name for d in dirs2] == [
        "bundle-000-replica_divergence",
        "bundle-001-stall",
    ]


def test_health_event_as_dict_roundtrip():
    event = _event()
    data = event.as_dict()
    assert json.loads(json.dumps(data, sort_keys=True)) == data
    assert data["kind"] == "replica_divergence"
    assert data["window"] == [0.0, 0.25]
    assert "replica_divergence" in event.describe()
