"""Unit tests for the anomaly-detector catalogue (pure window math)."""

from repro.obs.health.detectors import (
    CacheStalenessDetector,
    ClientRetrySpikeDetector,
    EnclaveRebootDetector,
    FastReadAbortStormDetector,
    ModeSwitchChurnDetector,
    QueueSaturationDetector,
    ReplicaDivergenceDetector,
    SealedCounterStallDetector,
    ViewChangeDetector,
    default_detectors,
)
from repro.obs.health.window import WindowSnapshot


def _win(index=0):
    return WindowSnapshot(start=index * 0.25, end=(index + 1) * 0.25, index=index)


def _cell(win, executes=(8, 8, 8)):
    for i, n in enumerate(executes):
        win.node(f"replica-{i}").executes = n
    return win


def test_replica_divergence_fires_on_lagging_replica():
    det = ReplicaDivergenceDetector(min_quorum_ops=4, lag_ratio=0.25)
    win = _cell(_win(), executes=(8, 8, 0))
    findings = det.evaluate(win)
    assert [f.node for f in findings] == ["replica-2"]
    assert findings[0].kind == "replica_divergence"
    assert findings[0].severity == "critical"


def test_replica_divergence_quiet_on_healthy_and_idle_cells():
    det = ReplicaDivergenceDetector()
    assert det.evaluate(_cell(_win(), executes=(8, 7, 8))) == []
    # Idle cell: quorum median below the floor -> no verdict.
    assert det.evaluate(_cell(_win(1), executes=(1, 0, 1))) == []
    # Two nodes only (not a quorum-shaped cell) -> no verdict.
    win = _win(2)
    win.node("replica-0").executes = 9
    win.node("replica-1").executes = 0
    assert det.evaluate(win) == []


def test_detectors_are_edge_triggered():
    det = ReplicaDivergenceDetector()
    assert det.evaluate(_cell(_win(0), executes=(8, 8, 0)))
    # Same condition persists -> no re-fire.
    assert det.evaluate(_cell(_win(1), executes=(8, 8, 0))) == []
    # Condition clears ...
    assert det.evaluate(_cell(_win(2), executes=(8, 8, 8))) == []
    # ... and re-appears -> fires again.
    assert det.evaluate(_cell(_win(3), executes=(8, 8, 0)))


def test_fast_read_abort_storm():
    det = FastReadAbortStormDetector(min_samples=6, abort_ratio=0.5)
    win = _win()
    node = win.node("replica-0")
    node.fast_hits = 2
    node.fast_conflicts = 3
    node.fast_timeouts = 3
    findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["fast_read_abort_storm"]
    # Healthy hit-dominated window stays quiet.
    win2 = _win(1)
    node2 = win2.node("replica-0")
    node2.fast_hits = 20
    node2.fast_conflicts = 1
    assert det.evaluate(win2) == []


def test_cache_staleness():
    det = CacheStalenessDetector(min_conflicts=4, conflict_ratio=0.5)
    win = _win()
    node = win.node("replica-1")
    node.fast_hits = 3
    node.fast_conflicts = 5
    node.cache_misses = 2
    findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["cache_staleness"]
    assert findings[0].detail["conflicts"] == 5


def test_mode_switch_and_churn():
    det = ModeSwitchChurnDetector(churn_threshold=3, trail=8)
    win = _win()
    win.node("replica-0").switches = 1
    findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["mode_switch"]
    assert findings[0].severity == "info"
    # Two more switches within the trail -> churn escalation. The
    # plain mode_switch condition is still active from the previous
    # window, so only the escalation fires (edge trigger).
    win2 = _win(1)
    win2.node("replica-0").switches = 2
    kinds = sorted(f.kind for f in det.evaluate(win2))
    assert kinds == ["mode_switch_churn"]


def test_view_change_instances_refire():
    det = ViewChangeDetector()
    win = _win()
    node = win.node("replica-0")
    node.view = 1
    node.view_delta = 1
    assert [f.kind for f in det.evaluate(win)] == ["view_change"]
    # A *second* view change is a distinct instance and fires again.
    win2 = _win(1)
    node2 = win2.node("replica-0")
    node2.view = 2
    node2.view_delta = 1
    assert [f.kind for f in det.evaluate(win2)] == ["view_change"]


def test_sealed_counter_stall_needs_patience():
    det = SealedCounterStallDetector(patience=2, min_cluster_progress=4)
    for i in range(2):
        win = _cell(_win(i), executes=(4, 4, 0))
        win.node("replica-2").sealed_delta = 0
        findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["sealed_counter_stall"]
    assert findings[0].node == "replica-2"
    # One window of stall is not enough.
    det2 = SealedCounterStallDetector(patience=2, min_cluster_progress=4)
    win = _cell(_win(), executes=(4, 4, 0))
    assert det2.evaluate(win) == []


def test_enclave_reboot():
    det = EnclaveRebootDetector()
    win = _win()
    node = win.node("replica-1")
    node.reboots_delta = 1
    node.cache_clears_delta = 1
    findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["enclave_reboot"]
    assert findings[0].severity == "critical"
    assert det.evaluate(_win(1)) == []


def test_client_retry_spike():
    det = ClientRetrySpikeDetector(min_retries=1)
    win = _win()
    win.retries = 2
    win.completed = 5
    findings = det.evaluate(win)
    assert [f.kind for f in findings] == ["client_retry_spike"]
    assert findings[0].node == ""
    assert det.evaluate(_win(1)) == []


def _queued(win, node="replica-0", waits=10, wait_mean=0.004,
            services=10, service_mean=0.00005):
    delta = win.node(node)
    delta.queue_waits = waits
    delta.queue_wait_sum = waits * wait_mean
    delta.order_services = services
    delta.order_service_sum = services * service_mean
    return win


def test_queue_saturation_needs_patience_and_ratio():
    det = QueueSaturationDetector(ratio=40.0, min_waits=6, patience=2)
    # Ratio 80x but only one hot window so far -> armed, not fired.
    assert det.evaluate(_queued(_win(0))) == []
    findings = det.evaluate(_queued(_win(1)))
    assert [f.kind for f in findings] == ["queue_saturation"]
    assert findings[0].severity == "warn"
    assert findings[0].detail["wait_service_ratio"] == 80.0
    # Edge-triggered: still saturated -> no re-fire.
    assert det.evaluate(_queued(_win(2))) == []
    # Recovery (healthy ratio) re-arms; two fresh hot windows fire again.
    assert det.evaluate(_queued(_win(3), wait_mean=0.0001)) == []
    assert det.evaluate(_queued(_win(4))) == []
    assert det.evaluate(_queued(_win(5)))


def test_queue_saturation_quiet_on_healthy_batching():
    det = QueueSaturationDetector(ratio=40.0, min_waits=6, patience=2)
    for index in range(4):
        # Healthy adaptive leader: wait ~15x service (batching bench).
        win = _queued(_win(index), wait_mean=0.00075)
        assert det.evaluate(win) == []


def test_queue_saturation_needs_samples_and_service_baseline():
    det = QueueSaturationDetector(ratio=40.0, min_waits=6, patience=1)
    # Too few queued requests to judge.
    assert det.evaluate(_queued(_win(0), waits=3)) == []
    # No ordering service observed (no denominator) -> quiet.
    assert det.evaluate(_queued(_win(1), services=0, service_mean=0.0)) == []


def test_default_catalogue_quiet_on_healthy_window():
    win = _cell(_win(), executes=(8, 8, 7))
    node = win.node("replica-0")
    node.fast_hits = 12
    win.completed = 10
    for det in default_detectors():
        assert det.evaluate(win) == [], det.name
