"""Regression tests: ObsPlane attach/detach lifecycle is idempotent.

A plane re-attached to its own cluster must be a no-op (double-installed
monitor hooks and network taps would double-count every metric), a plane
attached elsewhere must refuse until detached, and repeated detach()
must restore hooks exactly once.
"""

import pytest

from repro.apps.echo import EchoService
from repro.bench.clusters import build_troxy
from repro.obs.health import HealthPlane
from repro.obs.probes import ObsPlane


def _cluster(seed=3):
    return build_troxy(
        seed=seed, app_factory=lambda: EchoService(reply_size=10)
    )


def _hook_counts(cluster):
    return (
        len(cluster.net._send_filters),
        [len(host.core.monitor.switch_hooks) for host in cluster.hosts],
    )


def test_reattach_same_cluster_is_a_noop():
    cluster = _cluster()
    plane = ObsPlane()
    assert plane.attach(cluster) is plane
    installed = _hook_counts(cluster)
    assert plane.attach(cluster) is plane
    assert _hook_counts(cluster) == installed
    assert len(plane._monitor_hooks) == len(cluster.hosts)


def test_attach_to_second_cluster_requires_detach():
    first, second = _cluster(1), _cluster(2)
    plane = ObsPlane().attach(first)
    with pytest.raises(RuntimeError, match="detach"):
        plane.attach(second)
    # The refused attach must leave the second cluster untouched.
    assert all(host.obs is None for host in second.hosts)
    plane.detach()
    plane.attach(second)
    assert all(host.obs is plane for host in second.hosts)


def test_detach_restores_hooks_exactly_once():
    cluster = _cluster()
    before = _hook_counts(cluster)
    plane = ObsPlane().attach(cluster)
    plane.detach()
    assert _hook_counts(cluster) == before
    assert all(replica.obs is None for replica in cluster.replicas)
    assert all(host.obs is None for host in cluster.hosts)
    # Second (and third) detach: no-op, no ValueError from removing
    # already-removed hooks.
    plane.detach()
    plane.detach()
    assert _hook_counts(cluster) == before


def test_detached_plane_can_reattach():
    cluster = _cluster()
    plane = ObsPlane().attach(cluster)
    plane.detach()
    assert plane.attach(cluster) is plane
    assert _hook_counts(cluster)[0] == 1
    assert all(host.obs is plane for host in cluster.hosts)


def test_health_plane_reattach_does_not_rebaseline():
    cluster = _cluster()
    plane = HealthPlane().attach(cluster)
    window = plane._win
    assert plane.attach(cluster) is plane
    # Same window object: re-attach did not reset the window clock.
    assert plane._win is window
    with pytest.raises(RuntimeError, match="detach"):
        plane.attach(_cluster(9))
