"""Golden-file tests for the deterministic exporters.

The goldens under ``tests/obs/golden/`` pin the exact bytes each
exporter produces for a small handcrafted registry + span table. Any
formatting change — label ordering, float rendering, JSON separators —
shows up as a diff here before it breaks byte-identical CI runs.

Regenerate after an intentional format change with::

    PYTHONPATH=src:tests python -m obs.test_export
"""

import json
import math
from pathlib import Path

import pytest

from repro.obs.export import (
    chrome_trace,
    metrics_jsonl,
    prometheus_text,
    write_report,
)
from repro.obs.registry import Registry
from repro.obs.spans import SpanRecorder

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def build_fixture():
    """Small deterministic registry + spans exercising every feature."""
    reg = Registry()
    c = reg.counter("requests_total", "Completed requests", node="r0", kind="read")
    c.inc()
    c.inc(2)
    reg.counter("requests_total", node="r1", kind="write").inc()
    g = reg.gauge("queue_depth", "Pending requests", node="r0")
    g.set(3)
    g.dec()
    h = reg.histogram(
        "latency_seconds", "Request latency", buckets=(0.001, 0.01, 0.1), node="r0"
    )
    for v in (0.0005, 0.002, 0.05, 0.5):
        h.observe(v)
    reg.counter("escaped_total", "Label escaping probe", label='a"b\\c\nd').inc()

    rec = SpanRecorder()
    root = rec.begin("client.invoke", 0.0, trace_id="c0#1", node="client-0", op="get")
    host = rec.begin(
        "troxy.host", 0.001, trace_id="c0#1", node="r0", type="ClientEnvelope"
    )
    ecall = rec.begin(
        "enclave.ecall:handle_client_envelope", 0.0012, trace_id="c0#1", node="r0"
    )
    rec.event("troxy.fast_read", 0.0015, trace_id="c0#1", node="r0", outcome="hit")
    rec.end(ecall, 0.002)
    rec.end(host, 0.0021)
    rec.end(root, 0.003, retries=0)
    rec.begin("internal.tick", 0.004, node="r1")  # untraced, left open
    rec.finish(0.005)
    return reg, rec


def _render_all():
    reg, rec = build_fixture()
    return {
        "metrics.prom": prometheus_text(reg),
        "metrics.jsonl": metrics_jsonl(reg, rec.spans),
        "trace.json": json.dumps(
            chrome_trace(rec.spans), sort_keys=True, separators=(",", ":")
        )
        + "\n",
    }


@pytest.mark.parametrize("filename", ["metrics.prom", "metrics.jsonl", "trace.json"])
def test_exporters_match_golden(filename):
    rendered = _render_all()[filename]
    golden = (GOLDEN_DIR / filename).read_text()
    assert rendered == golden


def test_exports_are_deterministic():
    assert _render_all() == _render_all()


def test_prometheus_structure():
    reg, _ = build_fixture()
    text = prometheus_text(reg)
    assert text.endswith("\n")
    assert "# TYPE requests_total counter" in text
    assert "# HELP queue_depth Pending requests" in text
    assert 'latency_seconds_bucket{node="r0",le="+Inf"} 4' in text
    assert "latency_seconds_count{node=\"r0\"} 4" in text
    # Label escaping: backslash, quote, newline.
    assert 'escaped_total{label="a\\"b\\\\c\\nd"} 1' in text
    assert prometheus_text(Registry()) == ""


def test_jsonl_records_parse():
    reg, rec = build_fixture()
    lines = metrics_jsonl(reg, rec.spans).splitlines()
    records = [json.loads(line) for line in lines]
    kinds = {r["type"] for r in records}
    assert kinds == {"counter", "gauge", "histogram", "span", "event"}
    hist = next(r for r in records if r["type"] == "histogram")
    assert hist["buckets"][-1]["le"] == "+Inf"
    assert hist["count"] == 4
    span = next(r for r in records if r["type"] == "span")
    assert {"span_id", "parent_id", "trace_id", "name", "node", "start", "end"} <= set(span)


def test_chrome_trace_structure():
    _, rec = build_fixture()
    doc = chrome_trace(rec.spans)
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    thread_names = {
        e["args"]["name"] for e in metas if e["name"] == "thread_name"
    }
    assert {"client-0", "r0", "r1"} <= thread_names
    complete = [e for e in events if e["ph"] == "X"]
    instant = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 4  # 3 request spans + 1 force-closed tick
    assert len(instant) == 1
    root = next(e for e in complete if e["name"] == "client.invoke")
    assert root["ts"] == 0.0
    assert root["dur"] == pytest.approx(3000.0)  # 3 ms in microseconds
    assert root["cat"] == "c0#1"
    # Untraced spans land in the "internal" category.
    tick = next(e for e in complete if e["name"] == "internal.tick")
    assert tick["cat"] == "internal"


def test_write_report_roundtrip(tmp_path):
    reg, rec = build_fixture()
    written = write_report(tmp_path / "out", reg, rec.spans)
    assert sorted(written) == ["chrome", "jsonl", "prometheus"]
    for path in written.values():
        assert path.exists()
        assert path.read_text().endswith("\n")
    with pytest.raises(ValueError):
        write_report(tmp_path / "bad", reg, rec.spans, formats=("nope",))


def test_nonfinite_prometheus_rendering():
    """+Inf/-Inf/NaN samples must use the Prometheus spellings."""
    reg = Registry()
    h = reg.histogram("weird_seconds", buckets=(1.0,))
    h.observe(math.inf)
    reg.gauge("pressure", node="r0").set(-math.inf)
    reg.gauge("ratio", node="r0").set(math.nan)
    text = prometheus_text(reg)
    assert "weird_seconds_sum +Inf" in text
    assert 'pressure{node="r0"} -Inf' in text
    assert 'ratio{node="r0"} NaN' in text
    assert "nan" not in text
    assert "inf" not in text.replace("+Inf", "").replace("-Inf", "")


def test_empty_label_instruments_render_bare():
    """No-label series print `name value` with no `{}` pair block."""
    reg = Registry()
    reg.counter("total_ops").inc(3)
    reg.histogram("lat", buckets=(0.1,)).observe(0.05)
    text = prometheus_text(reg)
    assert "\ntotal_ops 3\n" in "\n" + text
    assert "total_ops{}" not in text
    assert 'lat_bucket{le="0.1"} 1' in text
    assert "lat_sum 0.05" in text
    assert "lat_count 1" in text


def test_nonfinite_jsonl_stays_valid_json():
    """json.dumps would emit bare Infinity/NaN; exports must not."""
    reg = Registry()
    reg.histogram("weird_seconds", buckets=(1.0,)).observe(math.inf)
    reg.gauge("ratio").set(math.nan)
    text = metrics_jsonl(reg, [])
    records = [json.loads(line) for line in text.splitlines()]
    assert "Infinity" not in text and "NaN" not in text.replace('"NaN"', "")
    hist = next(r for r in records if r["type"] == "histogram")
    assert hist["sum"] == "+Inf"
    gauge = next(r for r in records if r["type"] == "gauge")
    assert gauge["value"] == "NaN"


def _regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for filename, text in _render_all().items():
        (GOLDEN_DIR / filename).write_text(text)
        print(f"wrote {GOLDEN_DIR / filename}")


if __name__ == "__main__":
    _regenerate()
