"""Unit tests for the declarative fault types and the fault plane."""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.faults import (
    EnclaveReboot,
    FaultEvent,
    FaultPlane,
    HostTamper,
    MessageCorrupt,
    MessageDelay,
    MessageLoss,
    NetworkPartition,
    ReplicaCrash,
    ReplicaRestart,
    Schedule,
    WriteContentionAttack,
)
from repro.faults.injector import Garbage, WireRule
from repro.sim.network import SendAttempt


def make_plane(seed=0, **kwargs):
    cluster = build_troxy(seed=seed, app_factory=KvStore, **kwargs)
    return cluster, FaultPlane(cluster)


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


# -- crash / restart ---------------------------------------------------------


def test_replica_crash_inject_and_heal():
    cluster, plane = make_plane(seed=1)
    fault = ReplicaCrash("replica-1")
    plane.inject(fault)
    assert cluster.host_of("replica-1")._stopped
    plane.heal(fault)
    assert not cluster.host_of("replica-1")._stopped
    # The plane logged both transitions with timestamps.
    assert [entry["event"] for entry in plane.log] == ["inject", "heal"]


def test_replica_restart_fault_brings_server_back():
    cluster, plane = make_plane(seed=2)
    plane.inject(ReplicaCrash("replica-2"))
    plane.inject(ReplicaRestart("replica-2"))
    assert not cluster.host_of("replica-2")._stopped


def test_crash_of_unknown_replica_raises():
    _, plane = make_plane(seed=3)
    with pytest.raises(KeyError):
        plane.inject(ReplicaCrash("replica-9"))


# -- enclave reboot ----------------------------------------------------------


def test_enclave_reboot_wipes_cache_and_snapshots_counters():
    cluster, plane = make_plane(seed=4)
    client = cluster.new_client(contact_index=0)
    run_ops(cluster, client, [put("k", b"v"), get("k")])
    assert len(cluster.cores[0].cache) > 0
    plane.inject(EnclaveReboot("replica-0"))
    assert len(cluster.cores[0].cache) == 0
    assert cluster.hosts[0].enclave.stats.reboots == 1
    snapshots = plane.counter_baselines["replica-0"]
    assert len(snapshots) == 1
    # Sealed counters survived: current values match the pre-reboot snapshot.
    after = cluster.replicas[0].counters.snapshot()
    assert after == snapshots[0]


def test_enclave_reboot_is_not_revertible():
    assert not EnclaveReboot("replica-0").revertible
    assert ReplicaCrash("replica-0").revertible
    assert not ReplicaRestart("replica-0").revertible


# -- partitions --------------------------------------------------------------


def test_partition_cuts_cross_group_links_and_heals():
    cluster, plane = make_plane(seed=5)
    fault = NetworkPartition((("replica-2",), ("replica-0", "replica-1")))
    plane.inject(fault)
    # Every cross-group link is cut in both directions...
    assert cluster.net._link("replica-2", "replica-0").cut
    assert cluster.net._link("replica-0", "replica-2").cut
    assert cluster.net._link("replica-2", "replica-1").cut
    # ...intra-group links are untouched.
    assert not cluster.net._link("replica-0", "replica-1").cut
    plane.heal(fault)
    assert not cluster.net._link("replica-2", "replica-0").cut
    assert not cluster.net._link("replica-1", "replica-2").cut


# -- wire rules --------------------------------------------------------------


def _attempt(src="replica-0", dst="replica-1", payload=b"x", size=8):
    return SendAttempt(src, dst, payload, size, None)


def test_delay_rule_adds_latency_to_matching_sends():
    _, plane = make_plane(seed=6)
    fault = MessageDelay(src="replica-*", dst="replica-*", delay=0.5)
    plane.inject(fault)
    attempt = _attempt()
    plane._filter(attempt)
    assert attempt.extra_delay == pytest.approx(0.5)
    non_matching = _attempt(dst="client-machine-0")
    plane._filter(non_matching)
    assert non_matching.extra_delay == 0.0


def test_loss_rule_drops_and_heal_removes_it():
    _, plane = make_plane(seed=7)
    fault = MessageLoss(probability=1.0)
    plane.inject(fault)
    attempt = _attempt()
    plane._filter(attempt)
    assert attempt.drop
    assert plane.rule_hits(fault) == 1
    plane.heal(fault)
    assert plane.rules == []
    assert plane.rule_hits(fault) == 1  # hits survive the heal
    fresh = _attempt()
    plane._filter(fresh)
    assert not fresh.drop


def test_payload_type_filter_restricts_rule():
    _, plane = make_plane(seed=8)
    fault = MessageLoss(payload_types=("CacheQuery",), probability=1.0)
    plane.inject(fault)
    attempt = _attempt(payload=b"not-a-cache-query")
    plane._filter(attempt)
    assert not attempt.drop


def test_corrupt_rule_replaces_unknown_payload_with_garbage():
    _, plane = make_plane(seed=9)
    fault = MessageCorrupt()
    plane.inject(fault)
    attempt = _attempt(payload=b"plain", size=64)
    plane._filter(attempt)
    assert isinstance(attempt.payload, Garbage)


def test_tap_capture_ring_is_bounded():
    """A long-lived tap must not grow without bound: only the newest
    ``capture_limit`` payloads stay; evictions are counted."""
    _, plane = make_plane(seed=9)
    rule = plane.tap()
    rule.capture_limit = 8
    for i in range(20):
        plane._filter(_attempt(payload=f"m{i}".encode()))
    assert rule.hits == 20
    assert len(rule.captured) == 8
    assert rule.capture_overflow == 12
    assert list(rule.captured) == [f"m{i}".encode() for i in range(12, 20)]


def test_wire_rule_glob_matching():
    rule = WireRule(kind="tap", src="replica-*", dst="client-machine-?")
    assert rule.matches(_attempt(src="replica-2", dst="client-machine-1"))
    assert not rule.matches(_attempt(src="client-1", dst="client-machine-1"))
    assert not rule.matches(_attempt(src="replica-2", dst="client-machine-12"))


# -- host tampering ----------------------------------------------------------


def test_host_tamper_budget_limits_forgeries():
    cluster, plane = make_plane(seed=10)
    fault = HostTamper("replica-0", count=1)
    plane.inject(fault)
    client = cluster.new_client(contact_index=0, request_timeout=1.0)
    results = run_ops(cluster, client, [put("x", b"real"), get("x")], until=60.0)
    assert plane.rule_hits(fault) == 1  # budget respected
    assert client.stats.invalid_replies >= 1
    assert [r.result.content for r in results] == [b"stored", b"real"]


# -- write contention --------------------------------------------------------


def test_write_contention_attack_spawns_and_stops_clients():
    cluster, plane = make_plane(seed=11)
    fault = WriteContentionAttack(keys=("k0",), interval=0.02, clients=2)
    plane.inject(fault)
    cluster.env.run(until=cluster.env.now + 0.5)
    plane.heal(fault)
    cluster.env.run(until=cluster.env.now + 5.0)
    states = plane.attack_states
    assert len(states) == 2
    assert all(state.done for state in states)
    assert sum(state.completed for state in states) > 0


# -- schedules ---------------------------------------------------------------


def test_schedule_composition_and_validation():
    a = Schedule.at(0.1, ReplicaCrash("replica-1"), duration=1.0)
    b = Schedule.at(0.2, EnclaveReboot("replica-0"))
    combined = a + b
    assert [event.at for event in combined.events] == [0.1, 0.2]

    with pytest.raises(ValueError):
        FaultEvent(-1.0, ReplicaCrash("replica-1"))
    with pytest.raises(ValueError):
        FaultEvent(0.0, ReplicaCrash("replica-1"), duration=0.0)
    with pytest.raises(ValueError):
        # Instantaneous faults cannot be given a heal window.
        FaultEvent(0.0, EnclaveReboot("replica-0"), duration=1.0)
    with pytest.raises(ValueError):
        # Attack traffic must always be bounded.
        FaultEvent(0.0, WriteContentionAttack(keys=("k",)))


def test_drive_executes_schedule_at_the_right_times():
    cluster, plane = make_plane(seed=12)
    plane.drive(Schedule.at(0.5, ReplicaCrash("replica-1"), duration=1.0))
    cluster.env.run(until=0.4)
    assert not cluster.host_of("replica-1")._stopped
    cluster.env.run(until=1.0)
    assert cluster.host_of("replica-1")._stopped
    cluster.env.run(until=2.0)
    assert not cluster.host_of("replica-1")._stopped
    assert [(round(e["t"], 3), e["event"]) for e in plane.log] == [
        (0.5, "inject"),
        (1.5, "heal"),
    ]
