"""Invariant checkers against known-good and known-bad histories."""

from repro.analysis.linearizability import OpRecord
from repro.faults.invariants import (
    check_cache_freshness,
    check_counter_monotonicity,
    check_linearizability,
    check_liveness,
    find_counter_regression,
    find_stale_read,
)


def rec(client, kind, key, value, start, end):
    return OpRecord(client, kind, key, value, start, end)


# -- linearizability ---------------------------------------------------------


def test_linearizability_accepts_sequential_history():
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c2", "get", "k", b"a", 2.0, 3.0),
        rec("c1", "put", "k", b"b", 4.0, 5.0),
        rec("c2", "get", "k", b"b", 6.0, 7.0),
    ]
    assert check_linearizability(history).ok


def test_linearizability_rejects_phantom_value():
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c2", "get", "k", b"b", 2.0, 3.0),  # b was never written
    ]
    result = check_linearizability(history)
    assert not result.ok
    assert "'k'" in result.detail


def test_linearizability_rejects_reordered_reads():
    # Both reads strictly after both writes, observing values in an
    # order no sequential register could produce.
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c1", "put", "k", b"b", 2.0, 3.0),
        rec("c2", "get", "k", b"b", 4.0, 5.0),
        rec("c2", "get", "k", b"a", 6.0, 7.0),  # regressed to the old value
    ]
    assert not check_linearizability(history).ok


# -- liveness ----------------------------------------------------------------


def test_liveness_flags_unfinished_drivers():
    assert check_liveness([]).ok
    result = check_liveness(["client-2", "client-1"])
    assert not result.ok
    assert "client-1, client-2" in result.detail


# -- cache freshness ---------------------------------------------------------


def test_stale_read_detected():
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c1", "put", "k", b"b", 2.0, 3.0),
        rec("c2", "get", "k", b"a", 4.0, 5.0),  # overwritten before the read
    ]
    result = check_cache_freshness(history)
    assert not result.ok
    assert "overwritten" in result.detail


def test_stale_none_read_detected():
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c2", "get", "k", None, 2.0, 3.0),  # put completed, read saw nothing
    ]
    assert not check_cache_freshness(history).ok


def test_concurrent_read_is_not_stale():
    # The newer put overlaps the read: either order is legal.
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c1", "put", "k", b"b", 2.0, 5.0),
        rec("c2", "get", "k", b"a", 3.0, 4.0),
    ]
    assert check_cache_freshness(history).ok


def test_alien_value_is_left_to_linearizability():
    # find_stale_read only reasons about values it saw written.
    history = [
        rec("c1", "put", "k", b"a", 0.0, 1.0),
        rec("c2", "get", "k", b"zz", 2.0, 3.0),
    ]
    assert find_stale_read(history) is None
    assert not check_linearizability(history).ok


# -- counter monotonicity ----------------------------------------------------


def test_counter_chain_monotone_passes():
    chains = {
        "replica-0": [{"order/0": 5}, {"order/0": 5}, {"order/0": 9}],
        "replica-1": [{"order/0": 3}],
    }
    assert check_counter_monotonicity(chains).ok


def test_counter_rollback_detected():
    chains = {"replica-0": [{"order/0": 9}, {"order/0": 4}]}
    result = check_counter_monotonicity(chains)
    assert not result.ok
    assert "rolled back 9 -> 4" in result.detail


def test_vanished_counter_detected():
    chains = {"replica-0": [{"order/0": 9}, {}]}
    assert "vanished" in find_counter_regression(chains)


def test_new_counters_may_appear():
    chains = {"replica-0": [{"a": 1}, {"a": 1, "b": 7}]}
    assert find_counter_regression(chains) is None
