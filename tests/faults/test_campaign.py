"""Campaign runner: determinism, CLI, and scenario catalogue checks."""

import json

import pytest

from repro.faults.__main__ import main
from repro.faults.campaign import (
    report_to_json,
    resolve_scenarios,
    run_campaign,
    run_scenario,
)
from repro.faults.schedule import SCENARIOS, get_scenario, scenario_names


def test_resolve_scenarios():
    assert resolve_scenarios("all") == list(scenario_names())
    assert resolve_scenarios("healthy_control, troxy_crash_failover") == [
        "healthy_control",
        "troxy_crash_failover",
    ]
    with pytest.raises(KeyError):
        resolve_scenarios("no_such_scenario")


def test_catalogue_is_well_formed():
    for scenario in SCENARIOS.values():
        assert scenario.description
        assert scenario.paper_ref
        assert scenario.horizon > 0
        for event in scenario.schedule.events:
            assert event.at < scenario.horizon


def test_same_seed_reruns_are_byte_identical():
    first = run_campaign(["healthy_control"], [0])
    second = run_campaign(["healthy_control"], [0])
    assert report_to_json(first) == report_to_json(second)


def test_healthy_control_passes_all_invariants():
    result = run_scenario(get_scenario("healthy_control"), 0)
    assert result["ok"]
    assert [inv["name"] for inv in result["invariants"]] == [
        "linearizability",
        "liveness",
        "cache_freshness",
        "counter_monotonicity",
    ]
    assert all(inv["ok"] for inv in result["invariants"])
    assert result["stats"]["ops_completed"] > 0
    assert result["fault_log"] == []


def test_enclave_reboot_scenario_records_counter_snapshots():
    result = run_scenario(get_scenario("enclave_reboot_rollback"), 0)
    assert result["ok"]
    assert result["stats"]["enclave_reboots"] == 2
    assert [e["event"] for e in result["fault_log"]] == ["inject", "inject"]


def test_cli_report_roundtrip(tmp_path, capsys):
    report_path = tmp_path / "out.json"
    code = main([
        "--scenarios", "healthy_control", "--seeds", "1",
        "--report", str(report_path),
    ])
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["summary"] == {"total": 1, "passed": 1, "failed": []}
    out = capsys.readouterr().out
    assert "PASS" in out and "healthy_control" in out


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_replayed_reply_does_not_repoison_fast_read_cache():
    """Regression: a client retransmission after tamper-induced failover
    is answered from the replicas' duplicate-suppression cache; that
    replayed read once re-installed its (by then overwritten) value into
    the fast-read caches, and a later fast read served the stale value.
    Replays must never install cache entries."""
    result = run_scenario(get_scenario("host_tamper_replies"), 1)
    assert result["ok"], [inv for inv in result["invariants"] if not inv["ok"]]


def test_replayed_reply_quorum_cannot_feed_a_lease_read():
    """Regression: a vote quorum formed over *replayed* replies
    (duplicate-suppression answers to a post-failover retransmission)
    installed the replay's original-execution-position value as a voted
    cache entry. The voted fast-read path never served it (remote caches
    were purged, so no f+1 corroboration), but a read lease served the
    poisoned entry locally. Replies now carry a Troxy-authenticated
    ``fresh`` bit and a replayed quorum is decided without installing
    (docs/READS.md)."""
    from dataclasses import replace as dc_replace

    scenario = dc_replace(
        get_scenario("host_tamper_replies"),
        name="host_tamper_replies_leases",
        cluster_kwargs=(("leases", 0.5),),
    )
    result = run_scenario(scenario, 1)
    assert result["ok"], [inv for inv in result["invariants"] if not inv["ok"]]
    assert result["stats"]["lease_read_hits"] > 0


def test_run_scenario_emits_chaos_metrics():
    from repro.obs import Registry

    registry = Registry()
    result = run_scenario(get_scenario("healthy_control"), 0, registry=registry)
    assert registry.value("chaos_runs_total", scenario="healthy_control") == 1
    assert registry.value("chaos_failed_runs_total", scenario="healthy_control") == 0
    assert (
        registry.value("chaos_ops_total", scenario="healthy_control")
        == result["stats"]["ops_completed"]
    )
    assert registry.total("chaos_invariant_violations_total") == 0


def test_run_scenario_without_registry_unchanged():
    with_reg = run_scenario(get_scenario("healthy_control"), 0, registry=None)
    from repro.obs import Registry

    again = run_scenario(get_scenario("healthy_control"), 0, registry=Registry())
    assert report_to_json({"runs": [with_reg]}) == report_to_json({"runs": [again]})


def test_injection_timeline_recorded():
    """Every injected fault gets a sim-time activation record; timed
    faults also get their heal time, paired FIFO per fault string."""
    result = run_scenario(get_scenario("message_delay_burst"), 0)
    assert len(result["injections"]) == 1
    record = result["injections"][0]
    assert record["t"] == pytest.approx(0.2)
    assert record["healed_t"] == pytest.approx(2.2)
    assert "MessageDelay" in record["fault"]
    # Permanent faults (no heal) keep healed_t = None.
    crash = run_scenario(get_scenario("enclave_reboot_rollback"), 0)
    assert len(crash["injections"]) == 2
    assert all(r["healed_t"] is None for r in crash["injections"])
    # Fault-free runs record an empty timeline.
    quiet = run_scenario(get_scenario("healthy_control"), 0)
    assert quiet["injections"] == []


def test_wire_hit_stats_split_by_kind():
    """Regression: ``tampered_or_dropped`` once counted *every* wire-rule
    hit, so a delay-only scenario reported phantom tampering. The stat
    now covers only tamper + loss + corruption; delays and taps get
    their own ``wire_hits`` buckets."""
    delayed = run_scenario(get_scenario("message_delay_burst"), 0)
    stats = delayed["stats"]
    assert stats["wire_hits"]["delayed"] > 0
    assert stats["tampered_or_dropped"] == 0

    tampered = run_scenario(get_scenario("host_tamper_replies"), 1)
    hits = tampered["stats"]["wire_hits"]
    assert hits["tampered"] > 0 and hits["delayed"] == 0
    assert tampered["stats"]["tampered_or_dropped"] == (
        hits["tampered"] + hits["dropped"] + hits["corrupted"]
    )


def test_injections_carry_ground_truth():
    crash = run_scenario(get_scenario("troxy_crash_failover"), 1)
    grounds = [r["ground_truth"] for r in crash["injections"]]
    assert {"blame": "node", "targets": ["replica-1"], "required": True} in grounds
    # Benign wire faults carry no blame assignment.
    delayed = run_scenario(get_scenario("message_delay_burst"), 0)
    assert all(r["ground_truth"] is None for r in delayed["injections"])


def test_run_scenario_with_obs_plane_unperturbed():
    """Attaching an ObsPlane must not change the campaign report."""
    from repro.obs import ObsPlane

    bare = run_scenario(get_scenario("healthy_control"), 0)
    plane = ObsPlane()
    observed = run_scenario(get_scenario("healthy_control"), 0, obs=plane)
    plane.finalize()
    assert report_to_json({"runs": [bare]}) == report_to_json(
        {"runs": [observed]}
    )
    assert len(plane.spans) > 0
    assert plane.registry.total("client_invocations_total") > 0


@pytest.mark.slow
def test_full_catalogue_seed0_green():
    report = run_campaign(list(scenario_names()), [0])
    assert report["summary"]["failed"] == []
