"""Unit tests for the Troxy cache-protocol messages."""

import pytest

from repro.crypto import KeyRing
from repro.troxy.messages import CacheEntryReply, CacheQuery


def keyring():
    return KeyRing(b"master-secret-00")


def test_query_auth_input_binds_all_fields():
    base = CacheQuery.auth_input(b"\x01" * 32, "replica-0", 7)
    assert base != CacheQuery.auth_input(b"\x02" * 32, "replica-0", 7)
    assert base != CacheQuery.auth_input(b"\x01" * 32, "replica-1", 7)
    assert base != CacheQuery.auth_input(b"\x01" * 32, "replica-0", 8)


def test_reply_auth_input_binds_all_fields_including_absent_entry():
    present = CacheEntryReply.auth_input(b"\x01" * 32, b"\x02" * 32, "r", 1)
    absent = CacheEntryReply.auth_input(b"\x01" * 32, None, "r", 1)
    assert present != absent
    assert absent != CacheEntryReply.auth_input(b"\x01" * 32, None, "r", 2)


def test_query_tag_roundtrip():
    ring = keyring()
    key = ring.troxy_instance("replica-0")
    tag = key.sign(CacheQuery.auth_input(b"\x01" * 32, "replica-0", 3))
    query = CacheQuery(b"\x01" * 32, "replica-0", 3, tag)
    assert key.verify(CacheQuery.auth_input(query.request_digest, query.asker, query.nonce), query.tag)
    # Another instance's key must not verify it.
    other = ring.troxy_instance("replica-1")
    assert not other.verify(
        CacheQuery.auth_input(query.request_digest, query.asker, query.nonce), query.tag
    )


def test_wire_sizes():
    query = CacheQuery(b"\x01" * 32, "replica-0", 1, b"\x00" * 32)
    assert query.wire_size >= 32 + 32 + 8
    with_entry = CacheEntryReply(b"\x01" * 32, b"\x02" * 32, "replica-1", 1, b"\x00" * 32)
    without = CacheEntryReply(b"\x01" * 32, None, "replica-1", 1, b"\x00" * 32)
    assert with_entry.wire_size == without.wire_size + 32  # the hash optimization


def test_reply_digest_only_not_full_body():
    """Section VI-C2: only the hash of the reply crosses the wire."""
    reply = CacheEntryReply(b"\x01" * 32, b"\x02" * 32, "replica-1", 1, b"\x00" * 32)
    # 8 KB cached reply would otherwise dominate; digest keeps it ~100 B.
    assert reply.wire_size < 200
