"""Unit tests for the untrusted Troxy host."""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.troxy.core import Action
from repro.troxy.host import TROXY_ECALLS


def test_ecall_table_is_the_declared_interface():
    cluster = build_troxy(seed=41, app_factory=KvStore)
    host = cluster.hosts[0]
    assert set(TROXY_ECALLS).issubset(set(host.enclave.ecall_names))
    # Plus Hybster's trusted-subsystem calls on its own boundary.
    replica_boundary = cluster.replicas[0].boundary
    assert "certify_order" in replica_boundary.ecall_names


def test_unknown_action_kind_raises():
    cluster = build_troxy(seed=42, app_factory=KvStore)
    host = cluster.hosts[0]

    def driver():
        yield from host._act(Action("launch_missiles"))

    cluster.env.process(driver())
    with pytest.raises(ValueError, match="unknown action kind"):
        cluster.env.run(until=1.0)


def test_wait_and_drop_actions_are_noops():
    cluster = build_troxy(seed=43, app_factory=KvStore)
    host = cluster.hosts[0]
    sent_before = cluster.net.messages_sent

    def driver():
        yield from host._act(Action("wait"))
        yield from host._act(Action("drop", reason="x"))
        yield from host._act(None)

    cluster.env.process(driver())
    cluster.env.run(until=1.0)
    assert cluster.net.messages_sent == sent_before


def test_stopped_host_ignores_traffic():
    cluster = build_troxy(seed=44, app_factory=KvStore)
    client = cluster.new_client(contact_index=1, request_timeout=0.5)
    cluster.hosts[1].stop()
    outcomes = []

    def driver():
        outcome = yield from client.invoke(put("k", b"v"))
        outcomes.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    # Served, but only after failover away from the dead host.
    assert outcomes and outcomes[0].result.content == b"stored"
    assert client.stats.failovers >= 1
    assert cluster.cores[1].stats.client_requests == 0


def test_host_routes_protocol_traffic_to_replica():
    cluster = build_troxy(seed=45, app_factory=KvStore)
    client = cluster.new_client(contact_index=0)

    def driver():
        yield from client.invoke(put("k", b"v"))

    cluster.env.process(driver())
    cluster.env.run(until=10.0)
    # Followers received ORDERs through their hosts' dispatch path.
    assert cluster.replicas[1].stats.commits_sent >= 1
    assert cluster.replicas[2].stats.commits_sent >= 1
