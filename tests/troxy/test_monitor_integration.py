"""The adaptive switch end-to-end: contention latches it, calm releases it."""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.troxy.monitor import ConflictMonitor


def test_switch_latches_under_contention_and_recovers():
    # Pins the conflict-monitor probe path; leases off so the CI lease
    # matrix cannot serve reads locally past the monitor (docs/READS.md).
    cluster = build_troxy(
        seed=141,
        app_factory=KvStore,
        leases="off",
        monitor_factory=lambda: ConflictMonitor(
            window=16, min_samples=8, threshold=0.4,
            probe_interval=2, recovery_successes=2,
        ),
    )
    core = cluster.cores[0]
    readers = [cluster.new_client(contact_index=0) for _ in range(4)]
    writer = cluster.new_client(contact_index=1)

    def seed():
        yield from writer.invoke(put("hot", b"v0"))

    cluster.env.process(seed())
    cluster.env.run(until=5.0)

    # Phase 1: heavy write contention on the hot key while reading.
    def contended_reader(client, rounds):
        for _ in range(rounds):
            yield from client.invoke(get("hot"))

    def contended_writer(rounds):
        for i in range(rounds):
            yield from writer.invoke(put("hot", f"v{i}".encode()))

    cluster.env.process(contended_writer(150))
    for reader in readers:
        cluster.env.process(contended_reader(reader, 60))
    cluster.env.run(until=60.0)
    assert core.monitor.stats.switches_to_total_order >= 1

    # Phase 2: writes stop; probes should release the switch eventually.
    for reader in readers:
        cluster.env.process(contended_reader(reader, 60))
    cluster.env.run(until=120.0)
    assert core.monitor.stats.probes >= 1
    assert not core.monitor.total_order_mode
    assert core.monitor.stats.switches_to_fast_read >= 1


def test_reads_stay_correct_across_mode_switches():
    cluster = build_troxy(
        seed=142,
        app_factory=KvStore,
        monitor_factory=lambda: ConflictMonitor(
            window=16, min_samples=8, threshold=0.3, probe_interval=4,
        ),
    )
    client = cluster.new_client(contact_index=0)
    writer = cluster.new_client(contact_index=1)
    observed = []

    def driver():
        for i in range(25):
            yield from writer.invoke(put("k", f"gen{i}".encode()))
            outcome = yield from client.invoke(get("k"))
            observed.append((i, outcome.result.content))

    cluster.env.process(driver())
    cluster.env.run(until=120.0)
    assert len(observed) == 25
    # Each read follows its write: it must observe exactly that value.
    for i, value in observed:
        assert value == f"gen{i}".encode()
