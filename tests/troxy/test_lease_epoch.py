"""Regression: lease revocation and write invalidation share one epoch
source (docs/READS.md).

The fast-read cache's per-key invalidation epochs fence in-flight voted
reads against concurrent *writes*. Lease revocation reuses exactly that
mechanism: ``handle_lease_revoke`` bumps the same per-key epoch, so a
reply vote that entered the pipeline before the revoke can never
install its (pre-write) result afterwards. With a separate epoch
source, that vote would resurrect the revoked entry — and a subsequent
lease read on the refreshed lease could serve the stale value with no
quorum left to catch it.
"""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.crypto import KeyRing, establish_session
from repro.hybster.config import ClusterConfig, LeaseConfig
from repro.hybster.messages import Reply, Request
from repro.hybster.secure import seal_body
from repro.sgx.counters import TrustedCounterSubsystem
from repro.sgx.sealed import SealedStorage
from repro.sim import Environment, Network, RngTree
from repro.sgx import Enclave
from repro.troxy.core import TroxyCore
from repro.troxy.lease import LeaseManager
from repro.troxy.messages import LeaseRevoke

MASTER = b"master-secret-00"


@pytest.fixture
def harness():
    env = Environment()
    net = Network(env, rng_tree=RngTree(5))
    node = net.add_node("replica-0")
    enclave = Enclave(node, "troxy-0", code_identity="troxy-v1")
    keyring = KeyRing(MASTER)
    counters = TrustedCounterSubsystem(
        "troxy-replica-0",
        keyring.troxy_group(),
        storage=SealedStorage(MASTER + b"replica-0/troxy-lease", enclave.measurement),
    )
    config = ClusterConfig(f=1, leases=LeaseConfig.on())
    core = TroxyCore(
        node=node,
        enclave=enclave,
        replica_id="replica-0",
        config=config,
        keyring=keyring,
        rng=RngTree(5).derive("t"),
        counters=counters,
    )
    return env, node, core, keyring


def drive(env, generator):
    box = []

    def proc():
        result = yield from generator
        box.append(result)

    env.process(proc())
    env.run(until=env.now + 5.0)
    assert box, "trusted call did not complete"
    return box[0]


def client_envelope(core, keyring, op, client_id="client-1", rid=1):
    session = establish_session(
        keyring.tls_master("troxy-replica-0"), client_id, "replica-0"
    )
    core.install_session(client_id, session.server)
    request = Request(client_id, rid, op, origin="client-machine-0")
    return seal_body(session.client, request), session


def read_op(key="k"):
    return Operation(OpKind.READ, "get", key)


def leader_grant(core, keyring, key="k", epoch=1024, duration=1000.0):
    manager = LeaseManager("replica-1", keyring.troxy_instance("replica-1"),
                           LeaseConfig.on(duration=duration))
    manager.note_request(key, "replica-0", core.node.env.now)
    grants = manager.grants_for_slot(epoch // 1024, core.node.env.now)
    assert grants
    return manager, grants


def signed_revoke(keyring, grant, sender="replica-1"):
    tag = keyring.troxy_instance(sender).sign(
        LeaseRevoke.auth_input(grant.key, grant.epoch, grant.holder, sender)
    )
    return LeaseRevoke(grant.key, grant.epoch, grant.holder, sender, tag)


def test_vote_after_lease_revoke_cannot_resurrect_entry(harness):
    """An ordered read snapshots the key epoch, a lease revoke lands,
    then the read's f+1 vote completes: the voted result must NOT be
    installed — the revoke's epoch bump outdates the vote."""
    env, node, core, keyring = harness
    assert core.leases_enabled and core.lease_table is not None

    # Install a live lease on "k" at this holder.
    manager, grants = leader_grant(core, keyring)
    drive(env, core.install_leases(grants))
    assert core.stats.lease_grants_installed == 1
    assert core.lease_table.valid("k", env.now)

    # An ordered read enters the vote pipeline (cold cache: the lease
    # path orders it to warm a voted entry). install_epoch snapshots now.
    envelope, session = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "order"
    pending = core._pending[("client-1", 1)]
    epoch_at_order = pending.install_epoch

    # The lease is revoked before the vote completes (a writer showed
    # up at the leader). Same epoch source: the key epoch moves.
    revoke = signed_revoke(keyring, grants[0])
    ack_action = drive(env, core.handle_lease_revoke(revoke))
    assert ack_action.kind == "send_lease_ack"
    assert not core.lease_table.valid("k", env.now)
    assert core.cache.key_epoch(("k",)) > epoch_at_order

    # f+1 = 2 matching votes now arrive for the (pre-write) read result.
    stale = Payload(b"pre-write")
    for replica_id in ("replica-0", "replica-1"):
        reply = Reply(replica_id, "client-1", 1, stale, read_op().digest())
        drive(env, core._vote(reply))

    # The vote decided (client got its reply — that serve is legal, the
    # write had not committed) but the entry was NOT installed: nothing
    # for a later lease read to resurrect.
    assert core.stats.replies_voted == 1
    assert core.stats.stale_installs_skipped == 1
    assert core.cache.get_voted(read_op().digest()) is None
    assert core.cache.peek(read_op().digest()) is None


def test_vote_without_intervening_revoke_installs(harness):
    """Control: the identical vote flow with no revoke in between does
    install the voted entry — the fence only fires when it must."""
    env, node, core, keyring = harness
    envelope, _ = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "order"

    fresh = Payload(b"current")
    for replica_id in ("replica-0", "replica-1"):
        reply = Reply(replica_id, "client-1", 1, fresh, read_op().digest())
        drive(env, core._vote(reply))

    assert core.stats.replies_voted == 1
    assert core.stats.stale_installs_skipped == 0
    assert core.cache.get_voted(read_op().digest()) is not None


def test_revoke_fences_reinstall_of_same_grant(harness):
    """After a revoke, replaying the original grant must be fenced by
    the sealed counter — revocation burns the epoch."""
    env, node, core, keyring = harness
    manager, grants = leader_grant(core, keyring)
    drive(env, core.install_leases(grants))
    revoke = signed_revoke(keyring, grants[0])
    drive(env, core.handle_lease_revoke(revoke))

    drive(env, core.install_leases(grants))  # replay
    assert core.stats.lease_grants_fenced == 1
    assert not core.lease_table.valid("k", env.now)
