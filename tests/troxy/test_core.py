"""Unit tests for the trusted Troxy core, driven directly (no cluster)."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.crypto import KeyRing, establish_session
from repro.hybster.config import ClusterConfig
from repro.hybster.messages import Reply, Request
from repro.hybster.secure import seal_body
from repro.sim import Environment, Network, RngTree
from repro.sgx import Enclave
from repro.troxy.core import TroxyCore
from repro.troxy.messages import CacheEntryReply, CacheQuery


@pytest.fixture
def harness():
    env = Environment()
    net = Network(env, rng_tree=RngTree(5))
    node = net.add_node("replica-0")
    enclave = Enclave(node, "troxy-0", code_identity="troxy-v1")
    keyring = KeyRing(b"master-secret-00")
    core = TroxyCore(
        node=node,
        enclave=enclave,
        replica_id="replica-0",
        config=ClusterConfig(f=1),
        keyring=keyring,
        rng=RngTree(5).derive("t"),
    )
    return env, node, core, keyring


def drive(env, generator):
    """Run a trusted generator to completion inside the simulation."""
    box = []

    def proc():
        result = yield from generator
        box.append(result)

    env.process(proc())
    env.run(until=env.now + 5.0)
    assert box, "trusted call did not complete"
    return box[0]


def client_envelope(core, keyring, op, client_id="client-1", rid=1):
    session = establish_session(
        keyring.tls_master("troxy-replica-0"), client_id, "replica-0"
    )
    core.install_session(client_id, session.server)
    request = Request(client_id, rid, op, origin="client-machine-0")
    return seal_body(session.client, request), session


def read_op(key="k"):
    return Operation(OpKind.READ, "get", key)


def write_op(key="k"):
    return Operation(OpKind.WRITE, "set", key, Payload(b"v"))


def test_write_request_is_ordered(harness):
    env, node, core, keyring = harness
    envelope, _ = client_envelope(core, keyring, write_op())
    action = drive(env, core.handle_client_envelope(envelope, "client-machine-0"))
    assert action.kind == "order"
    assert action.request.origin == "replica-0"  # rewritten to the contact
    assert not action.request.unordered


def test_request_without_session_dropped(harness):
    env, node, core, keyring = harness
    session = establish_session(keyring.tls_master("x"), "stranger", "replica-0")
    request = Request("stranger", 1, write_op(), origin="m")
    envelope = seal_body(session.client, request)
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "drop"
    assert core.stats.invalid_messages == 1


def test_read_misses_cold_cache_and_orders(harness):
    env, node, core, keyring = harness
    envelope, _ = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "order"
    assert core.monitor.stats.misses == 1


def test_read_hit_emits_f_cache_queries(harness):
    env, node, core, keyring = harness
    reply = Reply("replica-0", "seed", 1, Payload(b"cached"), read_op().digest())
    core.cache.install(read_op().digest(), reply, keys=("k",))
    envelope, _ = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "query"
    assert len(action.queries) == 1  # f = 1 random remote
    dst, query = action.queries[0]
    assert dst in ("replica-1", "replica-2")
    assert query.asker == "replica-0"


def test_matching_cache_reply_completes_fast_read(harness):
    env, node, core, keyring = harness
    cached = Reply("replica-0", "seed", 1, Payload(b"cached"), read_op().digest())
    core.cache.install(read_op().digest(), cached, keys=("k",))
    envelope, session = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    _, query = action.queries[0]

    remote_key = keyring.troxy_instance(query.asker)  # wrong key on purpose below
    responder = [r for r in ("replica-1", "replica-2") if r == action.queries[0][0]][0]
    responder_key = keyring.troxy_instance(responder)
    tag = responder_key.sign(
        CacheEntryReply.auth_input(
            query.request_digest, cached.result_digest(), responder, query.nonce
        )
    )
    answer = CacheEntryReply(
        query.request_digest, cached.result_digest(), responder, query.nonce, tag
    )
    final = drive(env, core.handle_cache_entry_reply(answer))
    assert final.kind == "reply"
    assert final.dst == "m"
    # The sealed reply opens on the client's endpoint.
    from repro.hybster.secure import open_body

    reply = open_body(session.client, final.envelope)
    assert reply.result.content == b"cached"
    assert core.stats.fast_read_hits == 1


def test_mismatching_cache_reply_falls_back_to_ordering(harness):
    env, node, core, keyring = harness
    cached = Reply("replica-0", "seed", 1, Payload(b"cached"), read_op().digest())
    core.cache.install(read_op().digest(), cached, keys=("k",))
    envelope, _ = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    responder, query = action.queries[0]
    responder_key = keyring.troxy_instance(responder)
    stale_digest = Payload(b"STALE").digest()
    tag = responder_key.sign(
        CacheEntryReply.auth_input(query.request_digest, stale_digest, responder, query.nonce)
    )
    answer = CacheEntryReply(query.request_digest, stale_digest, responder, query.nonce, tag)
    final = drive(env, core.handle_cache_entry_reply(answer))
    assert final.kind == "order"
    assert core.stats.fast_read_conflicts == 1
    # The possibly-outdated local entry was dropped.
    assert core.cache.peek(read_op().digest()) is None


def test_forged_cache_query_rejected(harness):
    env, node, core, keyring = harness
    bogus = CacheQuery(b"\x00" * 32, "replica-1", 7, b"\x00" * 32)
    action = drive(env, core.answer_cache_query(bogus))
    assert action.kind == "drop"
    assert core.stats.invalid_messages == 1


def test_write_invalidates_before_authentication(harness):
    env, node, core, keyring = harness
    cached = Reply("replica-0", "seed", 1, Payload(b"cached"), read_op().digest())
    core.cache.install(read_op().digest(), cached, keys=("k",))
    request = Request("client-1", 2, write_op(), origin="replica-0")
    reply = Reply("replica-0", "client-1", 2, Payload(b"done"), request.digest())
    action = drive(env, core.authenticate_local_reply(request, reply))
    # Entry for key "k" is gone by the time the tag exists.
    assert core.cache.peek(read_op().digest()) is None
    assert core.cache.stats.invalidations == 1


def test_vote_requires_quorum_of_distinct_troxies(harness):
    env, node, core, keyring = harness
    envelope, session = client_envelope(core, keyring, write_op())
    drive(env, core.handle_client_envelope(envelope, "m"))  # registers pending

    request = Request("client-1", 1, write_op(), origin="replica-0")
    result = Payload(b"done")

    def troxy_reply(replica_id):
        reply = Reply(replica_id, "client-1", 1, result, request.digest())
        tag = keyring.troxy_instance(replica_id).sign(reply.auth_bytes())
        return Reply(replica_id, "client-1", 1, result, request.digest(), troxy_tag=tag)

    first = drive(env, core.handle_replica_reply(troxy_reply("replica-1")))
    assert first.kind == "wait"
    duplicate = drive(env, core.handle_replica_reply(troxy_reply("replica-1")))
    assert duplicate.kind == "wait"  # same voter twice does not count
    second = drive(env, core.handle_replica_reply(troxy_reply("replica-2")))
    assert second.kind == "reply"
    assert core.stats.replies_voted == 1


def test_vote_rejects_unauthenticated_reply(harness):
    env, node, core, keyring = harness
    request = Request("client-1", 1, write_op(), origin="replica-0")
    bare = Reply("replica-1", "client-1", 1, Payload(b"x"), request.digest())
    action = drive(env, core.handle_replica_reply(bare))
    assert action.kind == "drop"
    forged = Reply(
        "replica-1", "client-1", 1, Payload(b"x"), request.digest(),
        troxy_tag=b"\x00" * 32,
    )
    action = drive(env, core.handle_replica_reply(forged))
    assert action.kind == "drop"
    assert core.stats.invalid_messages == 2


def test_total_order_mode_bypasses_cache(harness):
    env, node, core, keyring = harness
    cached = Reply("replica-0", "seed", 1, Payload(b"cached"), read_op().digest())
    core.cache.install(read_op().digest(), cached, keys=("k",))
    for _ in range(core.monitor.window):
        core.monitor.record_conflict()
    assert core.monitor.total_order_mode
    envelope, _ = client_envelope(core, keyring, read_op())
    action = drive(env, core.handle_client_envelope(envelope, "m"))
    assert action.kind == "order"  # despite the warm cache


def test_reboot_clears_sessions_and_pending(harness):
    env, node, core, keyring = harness
    envelope, _ = client_envelope(core, keyring, write_op())
    drive(env, core.handle_client_envelope(envelope, "m"))
    assert core._pending
    core.enclave.reboot()
    assert not core._pending
    assert not core._sessions
