"""Unit tests for the fast-read cache."""

import pytest

from repro.apps.base import Payload
from repro.hybster.messages import Reply
from repro.sim import Environment, Network, RngTree
from repro.sgx import Enclave
from repro.troxy.cache import FastReadCache


def make_reply(content=b"value", rid=1):
    return Reply(
        replica_id="replica-0",
        client_id="client-1",
        request_id=rid,
        result=Payload(content),
        request_digest=b"\x01" * 32,
    )


def digest(i: int) -> bytes:
    return i.to_bytes(4, "big") * 8


def test_miss_then_install_then_hit():
    cache = FastReadCache()
    assert cache.get(digest(1)) is None
    cache.install(digest(1), make_reply(), keys=("k",))
    hit = cache.get(digest(1))
    assert hit is not None
    assert hit.result.content == b"value"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1


def test_peek_does_not_affect_stats():
    cache = FastReadCache()
    cache.install(digest(1), make_reply(), keys=("k",))
    assert cache.peek(digest(1)) is not None
    assert cache.peek(digest(2)) is None
    assert cache.stats.hits == 0
    assert cache.stats.misses == 0


def test_invalidate_by_key():
    cache = FastReadCache()
    cache.install(digest(1), make_reply(), keys=("a",))
    cache.install(digest(2), make_reply(), keys=("b",))
    removed = cache.invalidate_keys(("a",))
    assert removed == 1
    assert cache.peek(digest(1)) is None
    assert cache.peek(digest(2)) is not None


def test_invalidate_multi_key_entry():
    cache = FastReadCache()
    cache.install(digest(1), make_reply(), keys=("a", "b"))
    assert cache.invalidate_keys(("b",)) == 1
    assert cache.peek(digest(1)) is None
    # Index cleaned: invalidating again removes nothing.
    assert cache.invalidate_keys(("a",)) == 0


def test_reinstall_replaces_entry():
    cache = FastReadCache()
    cache.install(digest(1), make_reply(b"old"), keys=("k",))
    cache.install(digest(1), make_reply(b"new"), keys=("k",))
    assert len(cache) == 1
    assert cache.peek(digest(1)).result.content == b"new"


def test_lru_eviction():
    cache = FastReadCache(max_entries=2)
    cache.install(digest(1), make_reply(), keys=("a",))
    cache.install(digest(2), make_reply(), keys=("b",))
    cache.get(digest(1))  # touch 1 so 2 becomes LRU
    cache.install(digest(3), make_reply(), keys=("c",))
    assert cache.peek(digest(2)) is None
    assert cache.peek(digest(1)) is not None
    assert cache.stats.evictions == 1


def test_clear_empties_everything():
    cache = FastReadCache()
    cache.install(digest(1), make_reply(), keys=("a",))
    cache.clear()
    assert len(cache) == 0
    assert cache.invalidate_keys(("a",)) == 0


def test_enclave_memory_accounting():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("n")
    enclave = Enclave(node, "troxy", code_identity="t")
    cache = FastReadCache(enclave, store_outside=True)
    cache.install(digest(1), make_reply(b"x" * 100), keys=("k",))
    outside = enclave.resident_bytes
    assert outside > 0
    cache.remove(digest(1))
    assert enclave.resident_bytes == 0

    inside_cache = FastReadCache(enclave, store_outside=False)
    inside_cache.install(digest(1), make_reply(b"x" * 100), keys=("k",))
    assert enclave.resident_bytes > outside  # full reply counts in EPC


def test_enclave_reboot_clears_cache():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("n")
    enclave = Enclave(node, "troxy", code_identity="t")
    cache = FastReadCache(enclave)
    cache.install(digest(1), make_reply(), keys=("k",))
    enclave.reboot()
    assert len(cache) == 0
    assert enclave.resident_bytes == 0


def test_invalid_max_entries():
    with pytest.raises(ValueError):
        FastReadCache(max_entries=0)
