"""Unit tests for the conflict monitor / adaptive total-order switch."""

import pytest

from repro.troxy.monitor import ConflictMonitor


def test_starts_in_fast_read_mode():
    monitor = ConflictMonitor()
    assert not monitor.total_order_mode
    assert monitor.should_try_fast_read()


def test_conflict_rate_computation():
    monitor = ConflictMonitor(window=16, min_samples=16, threshold=0.9)
    for _ in range(8):
        monitor.record_fast_success()
    for _ in range(8):
        monitor.record_conflict()
    assert monitor.conflict_rate == pytest.approx(0.5)


def test_switches_to_total_order_at_threshold():
    monitor = ConflictMonitor(window=16, min_samples=16, threshold=0.30)
    for _ in range(11):
        monitor.record_fast_success()
    for _ in range(5):
        monitor.record_conflict()
    assert monitor.total_order_mode
    assert monitor.stats.switches_to_total_order == 1


def test_no_switch_below_min_samples():
    monitor = ConflictMonitor(window=32, min_samples=16, threshold=0.30)
    for _ in range(10):
        monitor.record_conflict()
    assert not monitor.total_order_mode  # only 10 of 16 required samples


def test_cold_misses_do_not_latch_the_switch():
    monitor = ConflictMonitor(window=16, min_samples=16)
    for _ in range(100):
        monitor.record_miss()
    assert not monitor.total_order_mode
    assert monitor.stats.misses == 100


def test_probing_in_total_order_mode():
    monitor = ConflictMonitor(window=16, min_samples=16, threshold=0.1, probe_interval=4)
    for _ in range(16):
        monitor.record_conflict()
    assert monitor.total_order_mode
    attempts = [monitor.should_try_fast_read() for _ in range(12)]
    assert attempts.count(True) == 3  # every 4th read probes
    assert monitor.stats.probes == 3


def test_recovery_after_consecutive_probe_successes():
    monitor = ConflictMonitor(
        window=16, min_samples=16, threshold=0.1,
        probe_interval=1, recovery_successes=3,
    )
    for _ in range(16):
        monitor.record_conflict()
    assert monitor.total_order_mode
    for _ in range(3):
        assert monitor.should_try_fast_read()
        monitor.record_fast_success()
    assert not monitor.total_order_mode
    assert monitor.stats.switches_to_fast_read == 1


def test_probe_failure_resets_recovery():
    monitor = ConflictMonitor(
        window=16, min_samples=16, threshold=0.1,
        probe_interval=1, recovery_successes=2,
    )
    for _ in range(16):
        monitor.record_conflict()
    monitor.should_try_fast_read()
    monitor.record_fast_success()
    monitor.should_try_fast_read()
    monitor.record_conflict()  # breaks the streak
    monitor.should_try_fast_read()
    monitor.record_fast_success()
    assert monitor.total_order_mode  # still latched
    monitor.should_try_fast_read()
    monitor.record_fast_success()
    assert not monitor.total_order_mode


def test_parameter_validation():
    with pytest.raises(ValueError):
        ConflictMonitor(threshold=0.0)
    with pytest.raises(ValueError):
        ConflictMonitor(threshold=1.5)
    with pytest.raises(ValueError):
        ConflictMonitor(window=4, min_samples=16)
