"""Unit tests for cost profiles and the key ring."""

import pytest

from repro.crypto import CPP, CPP_SGX, JAVA, KeyRing, OpCost, profile


def test_opcost_linear():
    op = OpCost(base=1e-6, per_byte=1e-9)
    assert op.cost(0) == pytest.approx(1e-6)
    assert op.cost(1000) == pytest.approx(2e-6)


def test_opcost_rejects_negative_size():
    with pytest.raises(ValueError):
        OpCost(base=1e-6, per_byte=1e-9).cost(-1)


def test_java_slower_than_cpp_for_large_macs():
    """The Fig. 6 crossover exists only if this holds."""
    for size in (1024, 4096, 8192):
        assert JAVA.mac_cost(size) > 2 * CPP.mac_cost(size)


def test_base_costs_dominate_small_messages():
    assert JAVA.mac_cost(10) < 3 * JAVA.mac_cost(0)


def test_sgx_profile_matches_cpp_instruction_stream():
    # SGX costs are charged by the enclave model, not the crypto profile.
    assert CPP_SGX.mac_cost(4096) == CPP.mac_cost(4096)
    assert CPP_SGX.aead_cost(100) == CPP.aead_cost(100)


def test_profile_lookup():
    assert profile("java") is JAVA
    assert profile("cpp") is CPP
    with pytest.raises(KeyError):
        profile("rust")


def test_keyring_pairwise_symmetric():
    ring = KeyRing(b"master-secret-00")
    assert ring.pairwise("r0", "r1") == ring.pairwise("r1", "r0")
    assert ring.pairwise("r0", "r1") != ring.pairwise("r0", "r2")


def test_keyring_troxy_group_shared():
    ring = KeyRing(b"master-secret-00")
    assert ring.troxy_group() == ring.troxy_group()
    assert ring.troxy_instance("t0") != ring.troxy_instance("t1")
    assert ring.troxy_instance("t0") != ring.troxy_group()


def test_keyring_rejects_weak_master():
    with pytest.raises(ValueError):
        KeyRing(b"short")


def test_keyring_tls_master_per_principal():
    ring = KeyRing(b"master-secret-00")
    assert ring.tls_master("replica-0") != ring.tls_master("replica-1")


def test_different_masters_give_different_keys():
    a = KeyRing(b"master-secret-00")
    b = KeyRing(b"master-secret-01")
    assert a.pairwise("r0", "r1") != b.pairwise("r0", "r1")
