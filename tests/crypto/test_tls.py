"""Unit tests for the simulated TLS layer (integrity + replay)."""

import dataclasses

import pytest

from repro.crypto import TLS_RECORD_OVERHEAD, TlsError, establish_session


def make_session():
    return establish_session(b"master-secret-00", "client-0", "replica-0")


def test_seal_open_roundtrip():
    session = make_session()
    record = session.client.seal(b"GET / HTTP/1.1")
    assert session.server.open(record) == b"GET / HTTP/1.1"


def test_bidirectional_traffic():
    session = make_session()
    assert session.server.open(session.client.seal(b"req")) == b"req"
    assert session.client.open(session.server.seal(b"resp")) == b"resp"


def test_sequences_are_per_direction():
    session = make_session()
    for i in range(5):
        payload = f"m{i}".encode()
        assert session.server.open(session.client.seal(payload)) == payload


def test_replay_rejected():
    session = make_session()
    record = session.client.seal(b"pay $5")
    assert session.server.open(record) == b"pay $5"
    with pytest.raises(TlsError, match="replay or gap"):
        session.server.open(record)


def test_reorder_gap_rejected():
    session = make_session()
    first = session.client.seal(b"one")
    second = session.client.seal(b"two")
    with pytest.raises(TlsError):
        session.server.open(second)
    # The skipped record is still acceptable at its slot.
    assert session.server.open(first) == b"one"


def test_tampered_payload_rejected():
    session = make_session()
    record = session.client.seal(b"amount=10")
    forged = dataclasses.replace(record, ciphertext=b"amount=99")
    with pytest.raises(TlsError, match="integrity"):
        session.server.open(forged)


def test_tampered_tag_rejected():
    session = make_session()
    record = session.client.seal(b"hello")
    forged = dataclasses.replace(record, tag=bytes(len(record.tag)))
    with pytest.raises(TlsError, match="integrity"):
        session.server.open(forged)


def test_cross_session_record_rejected():
    session_a = make_session()
    session_b = make_session()
    record = session_a.client.seal(b"hello")
    with pytest.raises(TlsError):
        session_b.server.open(record)


def test_untrusted_host_cannot_forge_without_key():
    """The attack from Section VI-B ("Bypassing Troxy"): a malicious
    replica without the session key cannot produce an acceptable record."""
    session = make_session()
    evil = establish_session(b"attacker-secret!", "client-0", "replica-0")
    record = evil.server.seal(b"fake reply")
    fixed_session = dataclasses.replace(record, session_id=session.session_id)
    with pytest.raises(TlsError, match="integrity"):
        session.client.open(fixed_session)


def test_wire_size_includes_overhead():
    session = make_session()
    record = session.client.seal(b"x" * 100)
    assert record.wire_size == 100 + TLS_RECORD_OVERHEAD


def test_session_ids_unique():
    assert make_session().session_id != make_session().session_id
