"""Unit tests for crypto primitives."""

import pytest

from repro.crypto import MacKey, derive_key, digest_of, sha256


def test_sha256_known_vector():
    assert sha256(b"").hex() == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_digest_of_is_unambiguous():
    # Without length prefixes these two would collide.
    assert digest_of(b"ab", b"c") != digest_of(b"a", b"bc")


def test_digest_of_deterministic():
    assert digest_of(b"x", b"y") == digest_of(b"x", b"y")


def test_mac_sign_verify_roundtrip():
    key = MacKey("k1", b"secret-material!")
    tag = key.sign(b"message")
    assert key.verify(b"message", tag)


def test_mac_detects_tamper():
    key = MacKey("k1", b"secret-material!")
    tag = key.sign(b"message")
    assert not key.verify(b"messagX", tag)
    assert not key.verify(b"message", b"\x00" * len(tag))


def test_mac_keys_are_independent():
    k1 = MacKey("k1", derive_key(b"master-secret-00", "a"))
    k2 = MacKey("k2", derive_key(b"master-secret-00", "b"))
    tag = k1.sign(b"m")
    assert not k2.verify(b"m", tag)


def test_derive_key_path_sensitivity():
    master = b"master-secret-00"
    assert derive_key(master, "a", "b") != derive_key(master, "b", "a")
    assert derive_key(master, "a", "b") == derive_key(master, "a", "b")


def test_derive_key_depends_on_master():
    assert derive_key(b"master-secret-00", "a") != derive_key(b"master-secret-01", "a")
