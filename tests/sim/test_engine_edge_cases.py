"""Additional engine edge cases: condition failures, defuse, values."""

import pytest

from repro.sim import Environment, SimulationError


def test_all_of_fails_if_any_child_fails():
    env = Environment()
    caught = []

    def proc(env, failing):
        try:
            yield env.all_of([env.timeout(1.0, "a"), failing])
        except RuntimeError as exc:
            caught.append(str(exc))

    failing = env.event()
    env.process(proc(env, failing))

    def firer(env, ev):
        yield env.timeout(0.5)
        ev.fail(RuntimeError("child broke"))

    env.process(firer(env, failing))
    env.run()
    assert caught == ["child broke"]


def test_any_of_fails_fast_on_failure():
    env = Environment()
    caught = []

    def proc(env, failing):
        try:
            yield env.any_of([env.timeout(100.0, "slow"), failing])
        except RuntimeError:
            caught.append(env.now)

    failing = env.event()
    env.process(proc(env, failing))

    def firer(env, ev):
        yield env.timeout(0.25)
        ev.fail(RuntimeError("boom"))

    env.process(firer(env, failing))
    env.run(until=1.0)
    assert caught == [0.25]


def test_defused_failure_does_not_crash_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled elsewhere")).defused()
    env.run()  # must not raise


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_condition_value_maps_indices():
    env = Environment()
    seen = {}

    def proc(env):
        result = yield env.all_of([env.timeout(1.0, "a"), env.timeout(2.0, "b")])
        seen.update(result)

    env.process(proc(env))
    env.run()
    assert seen == {0: "a", 1: "b"}


def test_any_of_partial_value():
    env = Environment()
    seen = {}

    def proc(env):
        result = yield env.any_of([env.timeout(1.0, "fast"), env.timeout(5.0, "slow")])
        seen.update(result)

    env.process(proc(env))
    env.run()
    assert seen == {0: "fast"}


def test_process_is_alive_flag():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_already_failed_event_raises_at_yield():
    env = Environment()
    caught = []
    failed = env.event()
    failed.fail(ValueError("pre-failed")).defused()
    env.run()  # process the failure

    def proc(env):
        try:
            yield failed
        except ValueError:
            caught.append(True)

    env.process(proc(env))
    env.run()
    assert caught == [True]
