"""Unit tests for the RNG tree and tracer."""

import pytest

from repro.sim import RngTree, TraceRecord, Tracer


def test_rng_same_path_same_stream():
    tree = RngTree(42)
    a = tree.derive("net", "link-0")
    b = tree.derive("net", "link-0")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_different_paths_diverge():
    tree = RngTree(42)
    assert tree.derive("a").random() != tree.derive("b").random()


def test_rng_different_seeds_diverge():
    assert RngTree(1).derive("x").random() != RngTree(2).derive("x").random()


def test_rng_child_tree_independent():
    tree = RngTree(42)
    child = tree.child("subsystem")
    assert child.derive("x").random() != tree.derive("x").random()
    assert child.derive("x").random() != tree.child("other").derive("x").random()


def test_rng_empty_path_rejected():
    with pytest.raises(ValueError):
        RngTree(1).derive()


def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "cat", "node", "detail")
    assert tracer.records == []


def test_tracer_records_and_filters():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "proto.send", "replica-0", "x")
    tracer.record(2.0, "net.deliver", "replica-1", "y")
    tracer.record(3.0, "proto.send", "replica-1", "z")
    assert len(tracer.records) == 3
    assert len(tracer.filter(category="proto.send")) == 2
    assert len(tracer.filter(node="replica-1")) == 2
    assert len(tracer.filter(category="proto.send", node="replica-1")) == 1


def test_tracer_category_allowlist():
    tracer = Tracer(enabled=True, categories={"proto.send"})
    tracer.record(1.0, "proto.send", "n", "kept")
    tracer.record(1.0, "net.deliver", "n", "dropped")
    assert len(tracer.records) == 1


def test_tracer_dump_and_clear():
    tracer = Tracer(enabled=True)
    tracer.record(0.0015, "cat", "node", "something happened")
    text = tracer.dump()
    assert "something happened" in text
    assert "1.500 ms" in text
    tracer.clear()
    assert tracer.records == []


def test_trace_record_str():
    record = TraceRecord(0.5, "cat", "node-1", "detail")
    assert "node-1" in str(record)


def test_tracer_ring_buffer_drops_oldest():
    tracer = Tracer(enabled=True, max_records=3)
    for i in range(5):
        tracer.record(float(i), "cat", "n", f"r{i}")
    assert len(tracer.records) == 3
    assert [r.detail for r in tracer.records] == ["r2", "r3", "r4"]
    assert tracer.dropped == 2


def test_tracer_ring_buffer_not_filled_drops_nothing():
    tracer = Tracer(enabled=True, max_records=10)
    tracer.record(0.0, "cat", "n", "only")
    assert tracer.dropped == 0
    assert len(tracer.records) == 1


def test_tracer_unbounded_by_default():
    tracer = Tracer(enabled=True)
    assert tracer.max_records is None
    assert tracer.records == []  # plain list, comparable to literals
    for i in range(1000):
        tracer.record(float(i), "cat", "n", "x")
    assert len(tracer.records) == 1000
    assert tracer.dropped == 0


def test_tracer_ring_buffer_rejects_nonpositive_cap():
    with pytest.raises(ValueError):
        Tracer(max_records=0)


def test_tracer_ring_buffer_filter_and_clear():
    tracer = Tracer(enabled=True, max_records=2)
    tracer.record(0.0, "a", "n", "x")
    tracer.record(1.0, "b", "n", "y")
    tracer.record(2.0, "a", "n", "z")
    assert [r.detail for r in tracer.filter(category="a")] == ["z"]
    tracer.clear()
    assert len(tracer.records) == 0
