"""Unit tests for the RNG tree and tracer."""

import pytest

from repro.sim import RngTree, TraceRecord, Tracer


def test_rng_same_path_same_stream():
    tree = RngTree(42)
    a = tree.derive("net", "link-0")
    b = tree.derive("net", "link-0")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_different_paths_diverge():
    tree = RngTree(42)
    assert tree.derive("a").random() != tree.derive("b").random()


def test_rng_different_seeds_diverge():
    assert RngTree(1).derive("x").random() != RngTree(2).derive("x").random()


def test_rng_child_tree_independent():
    tree = RngTree(42)
    child = tree.child("subsystem")
    assert child.derive("x").random() != tree.derive("x").random()
    assert child.derive("x").random() != tree.child("other").derive("x").random()


def test_rng_empty_path_rejected():
    with pytest.raises(ValueError):
        RngTree(1).derive()


def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "cat", "node", "detail")
    assert tracer.records == []


def test_tracer_records_and_filters():
    tracer = Tracer(enabled=True)
    tracer.record(1.0, "proto.send", "replica-0", "x")
    tracer.record(2.0, "net.deliver", "replica-1", "y")
    tracer.record(3.0, "proto.send", "replica-1", "z")
    assert len(tracer.records) == 3
    assert len(tracer.filter(category="proto.send")) == 2
    assert len(tracer.filter(node="replica-1")) == 2
    assert len(tracer.filter(category="proto.send", node="replica-1")) == 1


def test_tracer_category_allowlist():
    tracer = Tracer(enabled=True, categories={"proto.send"})
    tracer.record(1.0, "proto.send", "n", "kept")
    tracer.record(1.0, "net.deliver", "n", "dropped")
    assert len(tracer.records) == 1


def test_tracer_dump_and_clear():
    tracer = Tracer(enabled=True)
    tracer.record(0.0015, "cat", "node", "something happened")
    text = tracer.dump()
    assert "something happened" in text
    assert "1.500 ms" in text
    tracer.clear()
    assert tracer.records == []


def test_trace_record_str():
    record = TraceRecord(0.5, "cat", "node-1", "detail")
    assert "node-1" in str(record)
