"""Unit tests for Store and Resource."""

import pytest

from repro.sim import Environment, Resource, Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    seen = []

    def getter(env, store):
        item = yield store.get()
        seen.append((env.now, item))

    store.put("x")
    env.process(getter(env, store))
    env.run()
    assert seen == [(0.0, "x")]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    seen = []

    def getter(env, store):
        item = yield store.get()
        seen.append((env.now, item))

    def putter(env, store):
        yield env.timeout(4.0)
        store.put("late")

    env.process(getter(env, store))
    env.process(putter(env, store))
    env.run()
    assert seen == [(4.0, "late")]


def test_store_is_fifo_for_items_and_getters():
    env = Environment()
    store = Store(env)
    seen = []

    def getter(env, store, tag):
        item = yield store.get()
        seen.append((tag, item))

    env.process(getter(env, store, "g1"))
    env.process(getter(env, store, "g2"))

    def putter(env, store):
        yield env.timeout(1.0)
        store.put("first")
        store.put("second")

    env.process(putter(env, store))
    env.run()
    assert seen == [("g1", "first"), ("g2", "second")]


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_cancel_withdraws_getter():
    env = Environment()
    store = Store(env)
    delivered = []

    def impatient(env, store):
        get_event = store.get()
        result = yield env.any_of([get_event, env.timeout(1.0, "timeout")])
        if "timeout" in result.values():
            store.cancel(get_event)
        delivered.append(list(result.values()))

    def patient(env, store):
        item = yield store.get()
        delivered.append(item)

    env.process(impatient(env, store))

    def putter(env, store):
        yield env.timeout(2.0)
        env.process(patient(env, store))
        yield env.timeout(0.1)
        store.put("value")

    env.process(putter(env, store))
    env.run()
    assert delivered == [["timeout"], "value"]


def test_resource_capacity_enforced():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def worker(env, resource, tag):
        yield resource.request()
        log.append((env.now, tag, "in"))
        yield env.timeout(10.0)
        resource.release()
        log.append((env.now, tag, "out"))

    for tag in ("a", "b", "c"):
        env.process(worker(env, resource, tag))
    env.run()
    in_times = {tag: t for t, tag, what in log if what == "in"}
    assert in_times["a"] == 0.0
    assert in_times["b"] == 0.0
    assert in_times["c"] == 10.0


def test_resource_use_helper_releases():
    env = Environment()
    resource = Resource(env, capacity=1)
    done = []

    def worker(env, resource, tag):
        yield from resource.use(5.0)
        done.append((env.now, tag))

    env.process(worker(env, resource, "a"))
    env.process(worker(env, resource, "b"))
    env.run()
    assert done == [(5.0, "a"), (10.0, "b")]
    assert resource.in_use == 0


def test_resource_release_without_request_raises():
    env = Environment()
    resource = Resource(env, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queue_length():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        yield from resource.use(100.0)

    def waiter(env, resource):
        yield from resource.use(1.0)

    env.process(holder(env, resource))
    env.process(waiter(env, resource))
    env.run(until=1.0)
    assert resource.in_use == 1
    assert resource.queue_length == 1
