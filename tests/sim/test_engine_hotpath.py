"""Edge semantics the hot-path rewrite must preserve.

The scheduler, relay objects, and resource fast paths (see
docs/PERFORMANCE.md) all promise "same events, same order, same
results" as the naive implementation. These tests pin the corners
where that promise is easiest to break: already-processed targets,
interrupts racing relays, tiebreak priorities, and the deterministic
``env.steps`` / ``env.scheduled_events`` counters.
"""

import random

from repro.sim import Environment, Interrupt
from repro.sim.engine import Event
from repro.sim.resources import Resource


# -- already-processed targets ------------------------------------------------


def _processed_event(env, value=None):
    """An event that has been triggered *and* processed."""
    ev = env.event()
    ev.succeed(value)
    env.run()
    assert ev.processed
    return ev


def test_interrupt_of_process_waiting_on_processed_event():
    """Interrupting a process parked on a relay must not resume it twice.

    Yielding an already-processed event parks the process on an internal
    relay scheduled for the current time. An interrupt arriving before
    the relay pops must detach the process from it; otherwise the relay
    would resume the process a second time after the interrupt handler
    already did (regression test for the relay-as-wait-target fix).
    """
    env = Environment()
    done = _processed_event(env, "old-value")
    log = []

    def waiter(env):
        try:
            yield done
            log.append("value-delivered")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
        # If the stale relay still resumed us, this yield would receive
        # a spurious send() and the timeout below would misbehave.
        yield env.timeout(1.0)
        log.append(("slept-until", env.now))

    proc = env.process(waiter(env))
    env.step()  # run only the _Initialize; proc is now parked on the relay
    assert env.peek() == 0.0  # the relay is scheduled but not yet popped
    proc.interrupt("now")  # boosted: pops before the relay
    env.run()
    assert log == [("interrupted", "now"), ("slept-until", 1.0)]


def test_any_of_over_preprocessed_children():
    """AnyOf where every child already fired: succeeds on the next step,
    at the current time, with all processed children in the value map."""
    env = Environment()
    a = _processed_event(env, "a")
    b = _processed_event(env, "b")
    seen = []

    def proc(env):
        result = yield env.any_of([a, b])
        seen.append((env.now, result))

    env.process(proc(env))
    env.run()
    assert seen == [(0.0, {0: "a", 1: "b"})]


def test_all_of_over_preprocessed_children():
    env = Environment()
    a = _processed_event(env, 1)
    b = _processed_event(env, 2)
    seen = []

    def proc(env):
        result = yield env.all_of([a, b])
        seen.append((env.now, result))

    env.process(proc(env))
    env.run()
    assert seen == [(0.0, {0: 1, 1: 2})]


def test_all_of_mixed_preprocessed_and_pending_children():
    """AllOf must wait for the pending child even when the other child
    was processed before the condition was built."""
    env = Environment()
    ready = _processed_event(env, "ready")
    seen = []

    def proc(env):
        result = yield env.all_of([ready, env.timeout(2.0, "late")])
        seen.append((env.now, result))

    env.process(proc(env))
    env.run()
    assert seen == [(2.0, {0: "ready", 1: "late"})]


# -- tiebreak priorities ------------------------------------------------------


def test_priority_boost_preempts_same_time_events():
    """A boosted event scheduled *after* a normal same-time event is
    processed first (interrupt delivery relies on this)."""
    env = Environment()
    order = []

    normal = Event(env)
    normal._triggered = True
    normal.callbacks.append(lambda _e: order.append("normal"))
    boosted = Event(env)
    boosted._triggered = True
    boosted.callbacks.append(lambda _e: order.append("boosted"))

    env._schedule(normal)
    env._schedule(boosted, priority_boost=True)
    env.run()
    assert order == ["boosted", "normal"]


def test_interrupt_preempts_same_time_timeout():
    """The waiter's interrupt handler runs before its same-time timeout
    fires, and the stale timeout does not resume it afterwards."""
    env = Environment()
    log = []
    victim = []

    def interrupter(env):
        yield env.timeout(1.0)
        victim[0].interrupt()

    def sleeper(env):
        try:
            yield env.timeout(1.0)
            log.append("timeout-won")
        except Interrupt:
            log.append("interrupt-won")

    # The interrupter starts first, so its wake-up timeout pops before the
    # sleeper's same-time timeout; the boosted interruption then preempts
    # the sleeper's already-queued timeout.
    env.process(interrupter(env))
    victim.append(env.process(sleeper(env)))
    env.run()
    assert log == ["interrupt-won"]


# -- run() / step() equivalence ----------------------------------------------


def _churn_workload(env, log, seed):
    """A deterministic mix of timeouts, stores-free resource contention,
    conditions, and interrupts, exercising every scheduler branch."""
    rng = random.Random(seed)
    cpu = Resource(env, capacity=2)

    def worker(env, wid):
        for i in range(6):
            choice = rng.random()
            if choice < 0.5:
                yield from cpu.use(rng.uniform(0.001, 0.01))
            elif choice < 0.8:
                yield env.timeout(rng.uniform(0.001, 0.02))
            else:
                yield env.any_of(
                    [env.timeout(0.005, "fast"), env.timeout(0.5, "slow")]
                )
            log.append((wid, i, round(env.now, 9)))

    def meddler(env, victims):
        yield env.timeout(0.013)
        for victim in victims:
            if victim.is_alive:
                victim.interrupt("chaos")
                break

    workers = [env.process(worker(env, w)) for w in range(5)]

    def tolerant(env, inner):
        try:
            yield inner
        except Interrupt:
            log.append(("interrupted", round(env.now, 9)))

    wrapped = [env.process(tolerant(env, w)) for w in workers]
    env.process(meddler(env, workers))
    return wrapped


def test_run_matches_repeated_step():
    """The inlined run() loop and the reference step() loop must agree on
    the trace, the clock, and both observability counters."""
    results = []
    for driver in ("run", "step"):
        env = Environment()
        log = []
        _churn_workload(env, log, seed=99)
        if driver == "run":
            env.run()
        else:
            while env.peek() != float("inf"):
                env.step()
        results.append((log, env.now, env.steps, env.scheduled_events))
    assert results[0] == results[1]


def test_same_seed_same_steps_and_scheduled_events():
    """Byte-identical schedules: the step and scheduled-event counters —
    the quantities the perf-smoke CI budgets gate on — are functions of
    the seed alone."""
    observed = set()
    for _ in range(3):
        env = Environment()
        log = []
        _churn_workload(env, log, seed=7)
        env.run()
        observed.add((tuple(log), env.now, env.steps, env.scheduled_events))
    assert len(observed) == 1
    assert next(iter(observed))[2] > 50  # the workload actually churned


def test_gc_reenabled_after_run():
    """run() pauses the cycle collector for the hot loop; it must restore
    it even when a process crashes mid-run."""
    import gc

    env = Environment()

    def crasher(env):
        yield env.timeout(0.1)
        raise RuntimeError("boom")

    env.process(crasher(env))
    assert gc.isenabled()
    try:
        env.run()
    except RuntimeError:
        pass
    assert gc.isenabled()


# -- resource fast-path semantics --------------------------------------------


def test_saturated_resource_hands_off_in_fifo_order():
    """Under saturation the direct-handoff path must admit strictly in
    arrival order and charge each holder its own duration back-to-back."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def job(env, name, duration):
        yield from cpu.use(duration)
        log.append((name, round(env.now, 9)))

    for name, duration in (("a", 0.3), ("b", 0.1), ("c", 0.2)):
        env.process(job(env, name, duration))
    env.run()
    assert log == [("a", 0.3), ("b", 0.4), ("c", 0.6)]


def test_interrupt_during_admitted_hold_releases_unit():
    """Interrupting a process mid-hold returns the unit, and the next
    waiter is admitted at the interrupt time."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def holder(env):
        try:
            yield from cpu.use(10.0)
        except Interrupt:
            log.append(("holder-interrupted", env.now))

    def waiter(env):
        yield from cpu.use(0.5)
        log.append(("waiter-done", env.now))

    victim = env.process(holder(env))
    env.process(waiter(env))

    def interrupter(env):
        yield env.timeout(1.0)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [("holder-interrupted", 1.0), ("waiter-done", 1.5)]
    assert cpu.in_use == 0


def test_interrupt_while_queued_does_not_release_foreign_unit():
    """A waiter interrupted before admission never held the unit, so the
    current holder's accounting must be untouched."""
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def holder(env):
        yield from cpu.use(2.0)
        log.append(("holder-done", env.now))

    def queued(env):
        try:
            yield from cpu.use(1.0)
        except Interrupt:
            log.append(("queued-interrupted", env.now, cpu.in_use))

    env.process(holder(env))
    victim = env.process(queued(env))

    def interrupter(env):
        yield env.timeout(0.5)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [("queued-interrupted", 0.5, 1), ("holder-done", 2.0)]
