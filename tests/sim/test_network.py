"""Unit tests for the simulated network."""

import pytest

from repro.sim import (
    ConstantLatency,
    Environment,
    Network,
    NicConfig,
    NormalLatency,
    RngTree,
    UniformLatency,
)


def make_net(latency=None, nic=None):
    env = Environment()
    net = Network(env, rng_tree=RngTree(7), default_latency=latency or ConstantLatency(0.001))
    net.add_node("a", nic=nic)
    net.add_node("b", nic=nic)
    return env, net


def receive_one(env, net, name, out):
    msg = yield net.node(name).inbox.get()
    out.append((env.now, msg))


def test_basic_delivery():
    env, net = make_net()
    out = []
    env.process(receive_one(env, net, "b", out))
    net.send("a", "b", payload="hi", size=100)
    env.run()
    assert len(out) == 1
    time, msg = out[0]
    assert msg.payload == "hi"
    assert msg.src == "a"
    assert msg.dst == "b"
    # serialization twice + 1 ms propagation
    assert time == pytest.approx(0.001 + 2 * 100 / net.node("a").nic.bandwidth)


def test_payload_wire_size_attribute_used():
    env, net = make_net()

    class Sized:
        wire_size = 64

    out = []
    env.process(receive_one(env, net, "b", out))
    net.send("a", "b", payload=Sized())
    env.run()
    assert out[0][1].size == 64


def test_missing_size_rejected():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.send("a", "b", payload=object())


def test_unknown_endpoint_rejected():
    env, net = make_net()
    with pytest.raises(KeyError):
        net.send("a", "zzz", payload="x", size=1)


def test_duplicate_node_rejected():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.add_node("a")


def test_bandwidth_serializes_large_transfers():
    env, net = make_net(nic=NicConfig(count=1, bandwidth=1000.0))
    out = []

    def recv_two(env, net, out):
        for _ in range(2):
            msg = yield net.node("b").inbox.get()
            out.append(env.now)

    env.process(recv_two(env, net, out))
    net.send("a", "b", payload="m1", size=1000)  # 1 s serialization each side
    net.send("a", "b", payload="m2", size=1000)
    env.run()
    # Second message has to wait for the first on both NICs.
    assert out[0] < out[1]
    assert out[1] - out[0] >= 1.0


def test_multiple_nics_allow_parallel_transfers():
    env, net = make_net(nic=NicConfig(count=2, bandwidth=1000.0))
    out = []

    def recv_two(env, net, out):
        for _ in range(2):
            yield net.node("b").inbox.get()
            out.append(env.now)

    env.process(recv_two(env, net, out))
    net.send("a", "b", payload="m1", size=1000)
    net.send("a", "b", payload="m2", size=1000)
    env.run()
    assert out[1] - out[0] < 0.5


def test_partition_drops_messages():
    env, net = make_net()
    out = []
    env.process(receive_one(env, net, "b", out))
    net.cut("a", "b")
    net.send("a", "b", payload="lost", size=10)
    env.run(until=10.0)
    assert out == []
    net.heal("a", "b")
    net.send("a", "b", payload="found", size=10)
    env.run(until=20.0)
    assert len(out) == 1


def test_crashed_receiver_drops_messages():
    env, net = make_net()
    out = []
    env.process(receive_one(env, net, "b", out))
    net.node("b").crash()
    net.send("a", "b", payload="x", size=10)
    env.run(until=10.0)
    assert out == []


def test_crashed_sender_sends_nothing():
    env, net = make_net()
    out = []
    env.process(receive_one(env, net, "b", out))
    net.node("a").crash()
    net.send("a", "b", payload="x", size=10)
    env.run(until=10.0)
    assert out == []


def test_loss_probability_drops_fraction():
    env, net = make_net()
    net.set_loss("a", "b", 0.5)
    received = []

    def recv_all(env, net):
        while True:
            yield net.node("b").inbox.get()
            received.append(env.now)

    env.process(recv_all(env, net))
    for i in range(200):
        net.send("a", "b", payload=i, size=10)
    env.run(until=100.0)
    assert 50 < len(received) < 150


def test_loss_probability_validation():
    env, net = make_net()
    with pytest.raises(ValueError):
        net.set_loss("a", "b", 1.5)


def test_latency_override_per_direction():
    env, net = make_net(latency=ConstantLatency(0.001))
    net.set_latency("a", "b", ConstantLatency(0.5))
    out = []
    env.process(receive_one(env, net, "b", out))
    net.send("a", "b", payload="x", size=8)
    env.run()
    assert out[0][0] >= 0.5


def test_normal_latency_is_clamped_and_seeded():
    rng = RngTree(3).derive("x")
    model = NormalLatency(0.1, 0.02)
    samples = [model.sample(rng) for _ in range(1000)]
    assert all(s > 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert 0.09 < mean < 0.11


def test_uniform_latency_bounds():
    rng = RngTree(3).derive("y")
    model = UniformLatency(0.01, 0.02)
    samples = [model.sample(rng) for _ in range(100)]
    assert all(0.01 <= s <= 0.02 for s in samples)
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)


def test_constant_latency_validation():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_network_counters():
    env, net = make_net()
    out = []
    env.process(receive_one(env, net, "b", out))
    net.send("a", "b", payload="x", size=123)
    env.run()
    assert net.messages_sent == 1
    assert net.bytes_sent == 123


def test_deterministic_delivery_times():
    def run_once():
        env, net = make_net(latency=NormalLatency(0.1, 0.02))
        times = []

        def recv(env, net):
            for _ in range(20):
                yield net.node("b").inbox.get()
                times.append(env.now)

        env.process(recv(env, net))
        for i in range(20):
            net.send("a", "b", payload=i, size=100)
        env.run()
        return times

    assert run_once() == run_once()
