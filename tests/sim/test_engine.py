"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2.5]


def test_sequential_timeouts_accumulate():
    env = Environment()
    marks = []

    def proc(env):
        yield env.timeout(1.0)
        marks.append(env.now)
        yield env.timeout(2.0)
        marks.append(env.now)

    env.process(proc(env))
    env.run()
    assert marks == [1.0, 3.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_in_past_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [42]


def test_waiting_on_finished_process_resumes_immediately():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return "done"

    def parent(env, child_proc):
        yield env.timeout(5.0)
        value = yield child_proc
        results.append((env.now, value))

    child_proc = env.process(child(env))
    env.process(parent(env, child_proc))
    env.run()
    assert results == [(5.0, "done")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    seen = []

    def waiter(env, ev):
        value = yield ev
        seen.append((env.now, value))

    def firer(env, ev):
        yield env.timeout(3.0)
        ev.succeed("payload")

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert seen == [(3.0, "payload")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))

    def firer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    env.process(firer(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_surfaces_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_crashing_process_surfaces_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("process crashed")

    env.process(bad(env))
    with pytest.raises(ValueError, match="process crashed"):
        env.run()


def test_crash_propagates_to_waiting_parent():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["inner"]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [3.0]


def test_stale_event_does_not_resume_interrupted_process_twice():
    env = Environment()
    resumes = []

    def sleeper(env):
        try:
            yield env.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
        yield env.timeout(100.0)

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run(until=50.0)
    assert resumes == ["interrupt"]


def test_interrupt_on_finished_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    proc.interrupt()  # must not raise
    env.run()


def test_all_of_waits_for_every_event():
    env = Environment()
    seen = []

    def proc(env):
        results = yield env.all_of([env.timeout(1.0, "a"), env.timeout(3.0, "b")])
        seen.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first_event():
    env = Environment()
    seen = []

    def proc(env):
        results = yield env.any_of([env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
        seen.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(1.0, ["fast"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.all_of([])
        seen.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert seen == [(0.0, {})]


def test_yielding_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="expected an Event"):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    env.step()  # initialization
    assert env.peek() == 7.0


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_many_processes_are_deterministic():
    def run_once():
        env = Environment()
        order = []

        def worker(env, i):
            yield env.timeout((i * 7) % 5 + 0.1)
            order.append(i)
            yield env.timeout((i * 3) % 4 + 0.1)
            order.append(-i)

        for i in range(50):
            env.process(worker(env, i))
        env.run()
        return order

    assert run_once() == run_once()
