"""Packet loss must not wedge in-order streams.

Loss is applied at send time, *before* a stream sequence number is
assigned — so a lost message never leaves a hole in the stream and
later messages still deliver (the model's stand-in for TCP
retransmission keeping the stream moving).
"""

from repro.sim import Environment, Network, RngTree


def test_lossy_link_does_not_stall_fifo_stream():
    env = Environment()
    net = Network(env, rng_tree=RngTree(11), fifo_delivery=True)
    net.add_node("a")
    net.add_node("b")
    net.set_loss("a", "b", 0.5)
    received = []

    def recv():
        while True:
            msg = yield net.node("b").inbox.get()
            received.append(msg.payload)

    env.process(recv())
    for i in range(400):
        net.send("a", "b", payload=i, size=10, stream="s")
    env.run(until=10.0)
    # Roughly half arrive...
    assert 120 < len(received) < 280
    # ...and what arrives is still in send order (no wedged stream).
    assert received == sorted(received)


def test_cut_link_does_not_stall_after_heal():
    env = Environment()
    net = Network(env, rng_tree=RngTree(12), fifo_delivery=True)
    net.add_node("a")
    net.add_node("b")
    received = []

    def recv():
        while True:
            msg = yield net.node("b").inbox.get()
            received.append(msg.payload)

    env.process(recv())
    net.send("a", "b", payload="before", size=10, stream="s")
    env.run(until=1.0)
    net.cut("a", "b")
    net.send("a", "b", payload="dropped", size=10, stream="s")
    env.run(until=2.0)
    net.heal("a", "b")
    net.send("a", "b", payload="after", size=10, stream="s")
    env.run(until=3.0)
    assert received == ["before", "after"]


def test_crashed_receiver_consumes_stream_slots():
    """Messages to a crashed node advance the stream so delivery resumes
    cleanly after recovery + reset_streams."""
    env = Environment()
    net = Network(env, rng_tree=RngTree(13), fifo_delivery=True)
    net.add_node("a")
    node_b = net.add_node("b")
    received = []

    def recv():
        while True:
            msg = yield node_b.inbox.get()
            received.append(msg.payload)

    env.process(recv())
    node_b.crash()
    net.send("a", "b", payload="lost1", size=10, stream="s")
    net.send("a", "b", payload="lost2", size=10, stream="s")
    env.run(until=1.0)
    node_b.recover()
    net.reset_streams("b")
    net.send("a", "b", payload="alive", size=10, stream="s")
    env.run(until=2.0)
    assert received == ["alive"]
