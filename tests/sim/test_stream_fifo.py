"""Unit tests for TCP-like in-order stream delivery."""

import pytest

from repro.sim import Environment, Network, NormalLatency, RngTree, UniformLatency


def collect(env, net, name, out, count):
    def recv():
        for _ in range(count):
            msg = yield net.node(name).inbox.get()
            out.append(msg.payload)

    env.process(recv())


def make_jittery_net(fifo=True):
    env = Environment()
    net = Network(
        env,
        rng_tree=RngTree(3),
        default_latency=UniformLatency(0.01, 0.5),
        fifo_delivery=fifo,
    )
    net.add_node("a")
    net.add_node("b")
    return env, net


def test_same_stream_preserves_send_order_despite_jitter():
    env, net = make_jittery_net(fifo=True)
    out = []
    collect(env, net, "b", out, 50)
    for i in range(50):
        net.send("a", "b", payload=i, size=10, stream="conn-1")
    env.run()
    assert out == list(range(50))


def test_without_fifo_jitter_reorders():
    env, net = make_jittery_net(fifo=False)
    out = []
    collect(env, net, "b", out, 50)
    for i in range(50):
        net.send("a", "b", payload=i, size=10, stream="conn-1")
    env.run()
    assert sorted(out) == list(range(50))
    assert out != list(range(50))  # jitter visibly reorders


class ScriptedLatency:
    """Latency model returning pre-scripted samples in order."""

    def __init__(self, samples):
        self.samples = list(samples)

    def sample(self, rng):
        return self.samples.pop(0)


def test_distinct_streams_may_overtake_each_other():
    env = Environment()
    net = Network(env, rng_tree=RngTree(3), fifo_delivery=True)
    net.add_node("a")
    net.add_node("b")
    # First message (stream X) slow, second (stream Y) fast.
    net.set_latency("a", "b", ScriptedLatency([0.5, 0.001]))
    out = []
    collect(env, net, "b", out, 2)
    net.send("a", "b", payload="x-slow", size=10, stream="X")
    net.send("a", "b", payload="y-fast", size=10, stream="Y")
    env.run()
    assert out == ["y-fast", "x-slow"]


def test_default_stream_is_per_pair():
    env, net = make_jittery_net(fifo=True)
    out = []
    collect(env, net, "b", out, 30)
    for i in range(30):
        net.send("a", "b", payload=i, size=10)  # stream=None
    env.run()
    assert out == list(range(30))


def test_head_of_line_blocking_delays_fast_successor():
    env = Environment()
    net = Network(env, rng_tree=RngTree(3), fifo_delivery=True)
    net.add_node("a")
    net.add_node("b")
    times = []

    def recv():
        for _ in range(2):
            msg = yield net.node("b").inbox.get()
            times.append((msg.payload, env.now))

    env.process(recv())
    net.set_latency("a", "b", ScriptedLatency([0.4, 0.001]))
    net.send("a", "b", payload="first", size=10, stream="S")
    net.send("a", "b", payload="second", size=10, stream="S")
    env.run()
    # "second" physically arrived early but was held for "first".
    assert [p for p, _t in times] == ["first", "second"]
    assert times[1][1] >= times[0][1]
    assert times[0][1] >= 0.4
