"""Minimal in-tree PEP 517/660 build backend.

This environment is offline and its setuptools predates bundled
``bdist_wheel`` support, so ``pip install -e .`` cannot use the standard
backend. A wheel is only a zip archive with a ``.dist-info`` directory,
and an *editable* wheel additionally just needs a ``.pth`` file pointing
at ``src/`` — both are easy to produce directly, which is what this
backend does. No behaviour here is Troxy-specific.
"""

from __future__ import annotations

import base64
import csv
import hashlib
import io
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST_INFO = f"{NAME}-{VERSION}.dist-info"
ROOT = os.path.dirname(os.path.abspath(__file__))

METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Troxy (DSN 2018) reproduction: transparent access to BFT systems
Requires-Python: >=3.10
"""

WHEEL_FILE = """Wheel-Version: 1.0
Generator: repro-inline-backend
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


def _write_wheel(wheel_directory: str, extra_files: dict[str, bytes]) -> str:
    wheel_name = f"{NAME}-{VERSION}-py3-none-any.whl"
    files = dict(extra_files)
    files[f"{DIST_INFO}/METADATA"] = METADATA.encode()
    files[f"{DIST_INFO}/WHEEL"] = WHEEL_FILE.encode()

    record = io.StringIO()
    writer = csv.writer(record)
    for path, data in files.items():
        writer.writerow([path, _record_hash(data), len(data)])
    writer.writerow([f"{DIST_INFO}/RECORD", "", ""])
    files[f"{DIST_INFO}/RECORD"] = record.getvalue().encode()

    out_path = os.path.join(wheel_directory, wheel_name)
    with zipfile.ZipFile(out_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for path, data in files.items():
            zf.writestr(path, data)
    return wheel_name


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = os.path.join(metadata_directory, DIST_INFO)
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w") as fh:
        fh.write(METADATA)
    with open(os.path.join(dist_info, "WHEEL"), "w") as fh:
        fh.write(WHEEL_FILE)
    return DIST_INFO


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    pth = f"{os.path.join(ROOT, 'src')}\n".encode()
    return _write_wheel(wheel_directory, {f"{NAME}.pth": pth})


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    files: dict[str, bytes] = {}
    src = os.path.join(ROOT, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for filename in filenames:
            if filename.endswith((".pyc", ".pyo")):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, src)
            with open(full, "rb") as fh:
                files[rel.replace(os.sep, "/")] = fh.read()
    return _write_wheel(wheel_directory, files)


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("sdist builds are not needed in this environment")
